// Unit tests for src/util: RMQ, RNG, summary statistics, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/util/arena.hpp"
#include "src/util/flat.hpp"
#include "src/util/rmq.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace sap {
namespace {

TEST(RangeMinTest, SingleElement) {
  const std::vector<std::int64_t> v{42};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 0), 42);
  EXPECT_EQ(rmq.argmin(0, 0), 0u);
}

TEST(RangeMinTest, KnownArray) {
  const std::vector<std::int64_t> v{5, 3, 8, 3, 9, 1, 7};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 6), 1);
  EXPECT_EQ(rmq.argmin(0, 6), 5u);
  EXPECT_EQ(rmq.min(0, 3), 3);
  EXPECT_EQ(rmq.argmin(0, 3), 1u);  // ties resolve to the left
  EXPECT_EQ(rmq.min(2, 4), 3);
  EXPECT_EQ(rmq.argmin(2, 4), 3u);
  EXPECT_EQ(rmq.min(6, 6), 7);
}

TEST(RangeMinTest, MatchesNaiveOnRandomArrays) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = rng.uniform_int(-100, 100);
    RangeMin rmq(v);
    for (std::size_t lo = 0; lo < n; ++lo) {
      for (std::size_t hi = lo; hi < n; ++hi) {
        const auto naive =
            *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo),
                              v.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_EQ(rmq.min(lo, hi), naive) << "range [" << lo << "," << hi << "]";
        ASSERT_EQ(v[rmq.argmin(lo, hi)], naive);
      }
    }
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-7, 13);
    ASSERT_GE(x, -7);
    ASSERT_LE(x, 13);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(SummaryTest, MeanAndExtremes) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(23);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ThreadPoolTest, RunsEveryIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, FirstExceptionWinsWhenManyThrow) {
  // Many iterations throw concurrently; exactly one of their exceptions must
  // propagate intact (first to be recorded wins, later ones are dropped),
  // and every iteration still runs — no early abort leaves work undone.
  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i % 9 == 3) throw std::runtime_error("boom@" + std::to_string(i));
      });
      FAIL() << "parallel_for did not throw";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      ASSERT_EQ(what.rfind("boom@", 0), 0u) << what;
      const std::size_t i = std::stoul(what.substr(5));
      EXPECT_EQ(i % 9, 3u) << what;
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPoolTest, ReusableAfterThrow) {
  // A throwing sweep must leave the pool in a clean state: subsequent
  // parallel_for calls run every iteration exactly once, repeatedly.
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.parallel_for(32,
                                   [](std::size_t i) {
                                     if (i == 5) throw std::logic_error("x");
                                   }),
                 std::logic_error);
    std::vector<std::atomic<int>> hits(200);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, StressManySmallSweeps) {
  // Back-to-back sweeps of varying size exercise the wake/sleep handshake;
  // a lost wakeup or double-claimed index shows up as a wrong sum.
  ThreadPool pool(8);
  for (std::size_t n = 1; n <= 128; ++n) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "sweep of size " << n;
  }
}

TEST(PercentileTest, MatchesLinearInterpolation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 95.0), 7.5);
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
}

TEST(FlatBufTest, CapacityIsSplitFromSize) {
  Arena arena;
  FlatBuf<std::int64_t> buf(arena, 16);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) buf.push_back(i);
  EXPECT_EQ(buf.size(), 16u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 16u);  // clear releases no storage
  buf.resize_within_capacity(8);
  EXPECT_EQ(buf.size(), 8u);
}

TEST(FlatBufTest, GrowthPreservesContents) {
  Arena arena;
  FlatBuf<std::int64_t> buf(arena);
  for (std::int64_t i = 0; i < 10000; ++i) buf.push_back(i * 3);
  ASSERT_EQ(buf.size(), 10000u);
  for (std::int64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(buf[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(FlatBufTest, AppendBulkCopies) {
  Arena arena;
  FlatBuf<std::int32_t> buf(arena);
  const std::vector<std::int32_t> chunk{1, 2, 3, 4, 5};
  for (int round = 0; round < 100; ++round) {
    buf.append(chunk.data(), chunk.size());
  }
  ASSERT_EQ(buf.size(), 500u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], static_cast<std::int32_t>(i % 5 + 1));
  }
}

TEST(FlatBufTest, ResizeZeroedZeroFillsTheTail) {
  Arena arena;
  FlatBuf<std::int64_t> buf(arena);
  buf.push_back(7);
  buf.resize_zeroed(100);
  EXPECT_EQ(buf[0], 7);
  for (std::size_t i = 1; i < 100; ++i) EXPECT_EQ(buf[i], 0);
}

TEST(FlatBufTest, ViewIsUnmanagedAndShared) {
  Arena arena;
  FlatBuf<std::int64_t> buf(arena, 4);
  buf.push_back(1);
  buf.push_back(2);
  BufView<std::int64_t> view = buf.view();
  view[0] = 42;  // same storage
  EXPECT_EQ(buf[0], 42);
  view.push_back(3);  // within capacity, view-local size
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(buf.size(), 2u);  // the owner's size is untouched
}

TEST(FlatMatTest, ReshapeWithinReservationKeepsStorage) {
  Arena arena;
  FlatMat<std::int64_t> mat(arena);
  mat.reshape_zeroed(4, 6);
  EXPECT_EQ(mat.rows(), 4u);
  EXPECT_EQ(mat.cols(), 6u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(mat(r, c), 0);
  }
  mat(2, 3) = 99;
  // Shrinking the column count within the same stride reshapes in place.
  const std::size_t stride = mat.stride();
  mat.reshape_zeroed(4, 5);
  EXPECT_EQ(mat.stride(), stride);
  EXPECT_EQ(mat(2, 3), 99);
}

TEST(FlatMatTest, RowSpanHasLogicalWidth) {
  Arena arena;
  FlatMat<std::int64_t> mat(arena);
  mat.reshape_zeroed(3, 5);
  auto row = mat.row(1);
  EXPECT_EQ(row.size(), 5u);
  row[4] = 11;
  EXPECT_EQ(mat(1, 4), 11);
}

TEST(FlatMatTest, GrowthZeroFills) {
  Arena arena;
  FlatMat<std::int64_t> mat(arena);
  mat.reshape_zeroed(2, 2);
  mat(1, 1) = 5;
  mat.reshape_zeroed(64, 64);  // forces reallocation
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 64; ++c) EXPECT_EQ(mat(r, c), 0);
  }
  EXPECT_GE(mat.row_capacity(), 64u);
}

}  // namespace
}  // namespace sap
