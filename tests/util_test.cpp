// Unit tests for src/util: RMQ, RNG, summary statistics, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "src/util/rmq.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace sap {
namespace {

TEST(RangeMinTest, SingleElement) {
  const std::vector<std::int64_t> v{42};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 0), 42);
  EXPECT_EQ(rmq.argmin(0, 0), 0u);
}

TEST(RangeMinTest, KnownArray) {
  const std::vector<std::int64_t> v{5, 3, 8, 3, 9, 1, 7};
  RangeMin rmq(v);
  EXPECT_EQ(rmq.min(0, 6), 1);
  EXPECT_EQ(rmq.argmin(0, 6), 5u);
  EXPECT_EQ(rmq.min(0, 3), 3);
  EXPECT_EQ(rmq.argmin(0, 3), 1u);  // ties resolve to the left
  EXPECT_EQ(rmq.min(2, 4), 3);
  EXPECT_EQ(rmq.argmin(2, 4), 3u);
  EXPECT_EQ(rmq.min(6, 6), 7);
}

TEST(RangeMinTest, MatchesNaiveOnRandomArrays) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = rng.uniform_int(-100, 100);
    RangeMin rmq(v);
    for (std::size_t lo = 0; lo < n; ++lo) {
      for (std::size_t hi = lo; hi < n; ++hi) {
        const auto naive =
            *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo),
                              v.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_EQ(rmq.min(lo, hi), naive) << "range [" << lo << "," << hi << "]";
        ASSERT_EQ(v[rmq.argmin(lo, hi)], naive);
      }
    }
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-7, 13);
    ASSERT_GE(x, -7);
    ASSERT_LE(x, 13);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(SummaryTest, MeanAndExtremes) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(23);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ThreadPoolTest, RunsEveryIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace sap
