// Robustness & failure-injection suite: degenerate instance shapes, known
// closed-form cross-checks for the LP substrate, and corrupted solutions
// that the verifiers must reject.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/model/verify.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

TEST(DegenerateShapeTest, SingleEdgeSingleTask) {
  const PathInstance inst({5}, {Task{0, 0, 5, 7}});
  const SapSolution sol = solve_sap(inst);
  EXPECT_EQ(sol.weight(inst), 7);
  EXPECT_TRUE(verify_sap(inst, sol));
}

TEST(DegenerateShapeTest, SingleEdgeIsKnapsackLike) {
  // On one edge SAP degenerates to knapsack; the exact oracle must match a
  // direct knapsack computation.
  const PathInstance inst({10}, {Task{0, 0, 6, 60}, Task{0, 0, 5, 40},
                                 Task{0, 0, 4, 35}, Task{0, 0, 1, 3}});
  const SapExactResult opt = sap_exact_profile_dp(inst);
  ASSERT_TRUE(opt.proven_optimal);
  // Best subset with total demand <= 10: {6,4} = 95 or {5,4,1} = 78 or
  // {6,1}=63 ... optimum is 95? {5,4,1}=78, {6,4}=95, {6,5} demand 11 no.
  EXPECT_EQ(opt.weight, 95);
}

TEST(DegenerateShapeTest, AllTasksIdentical) {
  // Eight identical tasks of demand 2 under capacity 8: exactly 4 fit.
  std::vector<Task> tasks(8, Task{0, 2, 2, 5});
  const PathInstance inst({8, 8, 8}, tasks);
  const SapExactResult opt = sap_exact_profile_dp(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_EQ(opt.weight, 20);
  const SapSolution approx = solve_sap(inst);
  EXPECT_TRUE(verify_sap(inst, approx));
  EXPECT_GE(approx.weight(inst), 5);  // never returns empty here
}

TEST(DegenerateShapeTest, ZeroWeightTasksAreHarmless) {
  const PathInstance inst({4}, {Task{0, 0, 2, 0}, Task{0, 0, 2, 9}});
  const SapExactResult opt = sap_exact_profile_dp(inst);
  EXPECT_EQ(opt.weight, 9);
  const SapSolution sol = solve_sap(inst);
  EXPECT_TRUE(verify_sap(inst, sol));
  EXPECT_EQ(sol.weight(inst), 9);
}

TEST(DegenerateShapeTest, LongPathSparseTasks) {
  std::vector<Value> caps(200, 10);
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(Task{static_cast<EdgeId>(10 * i),
                         static_cast<EdgeId>(10 * i + 5), 4, 7});
  }
  const PathInstance inst(std::move(caps), std::move(tasks));
  const SapSolution sol = solve_sap(inst);
  EXPECT_TRUE(verify_sap(inst, sol));
  // Disjoint tasks: everything fits.
  EXPECT_EQ(sol.size(), 20u);
}

TEST(LpClosedFormTest, MatchesFractionalKnapsackGreedy) {
  // Single-edge UFPP relaxation == fractional knapsack, whose optimum has
  // the classic greedy closed form.
  Rng rng(347);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const Value cap = rng.uniform_int(5, 60);
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back(Task{0, 0, rng.uniform_int(1, cap),
                           rng.uniform_int(1, 100)});
    }
    const PathInstance inst({cap}, tasks);
    const double lp = ufpp_lp_upper_bound(inst);

    // Greedy by density with one fractional item.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::ranges::sort(order, [&](std::size_t a, std::size_t b) {
      return static_cast<double>(tasks[a].weight) /
                 static_cast<double>(tasks[a].demand) >
             static_cast<double>(tasks[b].weight) /
                 static_cast<double>(tasks[b].demand);
    });
    double remaining = static_cast<double>(cap);
    double greedy = 0;
    for (std::size_t i : order) {
      const double take =
          std::min(remaining, static_cast<double>(tasks[i].demand));
      greedy += take * static_cast<double>(tasks[i].weight) /
                static_cast<double>(tasks[i].demand);
      remaining -= take;
      if (remaining <= 0) break;
    }
    EXPECT_NEAR(lp, greedy, 1e-5) << "trial " << trial;
  }
}

TEST(FailureInjectionTest, VerifierRejectsCorruptedSolutions) {
  Rng rng(349);
  PathGenOptions opt;
  opt.num_edges = 8;
  opt.num_tasks = 12;
  opt.min_capacity = 4;
  opt.max_capacity = 12;
  for (int trial = 0; trial < 10; ++trial) {
    const PathInstance inst = generate_path_instance(opt, rng);
    const SapExactResult exact = sap_exact_profile_dp(inst);
    if (exact.solution.size() < 2) continue;
    const SapSolution& good = exact.solution;
    ASSERT_TRUE(verify_sap(inst, good));

    // Duplicate a placement.
    SapSolution dup = good;
    dup.placements.push_back(good.placements.front());
    EXPECT_FALSE(verify_sap(inst, dup));

    // Negative height.
    SapSolution negative = good;
    negative.placements.front().height = -1;
    EXPECT_FALSE(verify_sap(inst, negative));

    // Blow a task through its bottleneck.
    SapSolution tall = good;
    tall.placements.front().height =
        inst.bottleneck(tall.placements.front().task);
    EXPECT_FALSE(verify_sap(inst, tall));

    // Invalid id.
    SapSolution bogus = good;
    bogus.placements.front().task =
        static_cast<TaskId>(inst.num_tasks());
    EXPECT_FALSE(verify_sap(inst, bogus));
  }
}

TEST(FailureInjectionTest, RingVerifierRejectsCorruptions) {
  const RingInstance ring({8, 8, 8, 8},
                          {RingTask{0, 2, 3, 1}, RingTask{1, 3, 3, 1}});
  const RingSapSolution good{{{0, 0, true}, {1, 3, true}}};
  ASSERT_TRUE(verify_ring_sap(ring, good));

  RingSapSolution dup = good;
  dup.placements.push_back(good.placements.front());
  EXPECT_FALSE(verify_ring_sap(ring, dup));

  RingSapSolution tall = good;
  tall.placements[1].height = 6;  // top 9 > 8
  EXPECT_FALSE(verify_ring_sap(ring, tall));

  RingSapSolution negative = good;
  negative.placements[0].height = -2;
  EXPECT_FALSE(verify_ring_sap(ring, negative));

  // Flipping a route can create an overlap on the other arc.
  RingSapSolution flipped = good;
  flipped.placements[1].clockwise = false;  // task 1 now uses edges 3, 0
  // Heights 0 (task 0 on edges 0,1) and 3: task 1 at [3,6) vs task 0 at
  // [0,3): still disjoint on shared edge 0 -> feasible; push it down:
  flipped.placements[1].height = 1;
  EXPECT_FALSE(verify_ring_sap(ring, flipped));
}

TEST(SolverStressTest, ManyProfilesManySeeds) {
  // Broad randomized smoke: every solver output must verify.
  Rng rng(353);
  for (int trial = 0; trial < 30; ++trial) {
    PathGenOptions opt;
    opt.num_edges = static_cast<std::size_t>(rng.uniform_int(1, 24));
    opt.num_tasks = static_cast<std::size_t>(rng.uniform_int(0, 40));
    opt.profile = static_cast<CapacityProfile>(rng.uniform_int(0, 4));
    opt.demand = static_cast<DemandClass>(rng.uniform_int(0, 3));
    opt.min_capacity = rng.uniform_int(1, 8);
    opt.max_capacity = opt.min_capacity + rng.uniform_int(0, 56);
    const PathInstance inst = generate_path_instance(opt, rng);
    SolverParams params;
    params.seed = static_cast<std::uint64_t>(trial);
    const SapSolution sol = solve_sap(inst, params);
    ASSERT_TRUE(verify_sap(inst, sol))
        << "trial " << trial << ": " << verify_sap(inst, sol).reason;
  }
}

}  // namespace
}  // namespace sap
