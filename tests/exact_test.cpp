// Cross-validation of the two SAP oracles: the profile DP must agree with
// the obviously-correct brute force on every random tiny instance.
#include <gtest/gtest.h>

#include <numeric>

#include "src/exact/brute_force.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/exact/ufpp_profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"

namespace sap {
namespace {

TEST(BruteForceTest, SingleTask) {
  const PathInstance inst({4}, {Task{0, 0, 2, 7}});
  const SapSolution sol = sap_brute_force(inst);
  EXPECT_EQ(sol.weight(inst), 7);
  EXPECT_TRUE(verify_sap(inst, sol));
}

TEST(BruteForceTest, PrefersHeavierConflictingTask) {
  // Two tasks that cannot coexist (each needs the full capacity).
  const PathInstance inst({4, 4}, {Task{0, 1, 4, 3}, Task{0, 1, 4, 9}});
  const SapSolution sol = sap_brute_force(inst);
  ASSERT_EQ(sol.size(), 1u);
  EXPECT_EQ(sol.placements[0].task, 1);
}

TEST(BruteForceTest, GuardsAgainstHugeInputs) {
  const PathInstance tall({1000}, {Task{0, 0, 1, 1}});
  EXPECT_THROW(sap_brute_force(tall), std::invalid_argument);
}

TEST(ProfileDpTest, EmptyInstance) {
  const PathInstance inst({4, 4}, {});
  const SapExactResult r = sap_exact_profile_dp(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.weight, 0);
  EXPECT_TRUE(r.solution.empty());
}

TEST(ProfileDpTest, StacksCompatibleTasks) {
  const PathInstance inst({4, 4}, {Task{0, 1, 2, 5}, Task{0, 1, 2, 5}});
  const SapExactResult r = sap_exact_profile_dp(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.weight, 10);
  EXPECT_TRUE(verify_sap(inst, r.solution));
}

TEST(ProfileDpTest, RespectsDownstreamCapacityDrops) {
  // Task 0 spans a high-capacity prefix but its bottleneck is the final
  // low edge; placed high it would violate there.
  const PathInstance inst({8, 2}, {Task{0, 1, 2, 5}, Task{0, 0, 6, 4}});
  const SapExactResult r = sap_exact_profile_dp(inst);
  EXPECT_TRUE(r.proven_optimal);
  // Task 0 at height 0 (pinned by edge 1), task 1 at height 2.
  EXPECT_EQ(r.weight, 9);
  EXPECT_TRUE(verify_sap(inst, r.solution));
}

TEST(ProfileDpTest, SupportsHeightFloor) {
  const PathInstance inst({6}, {Task{0, 0, 3, 5}, Task{0, 0, 3, 4}});
  SapExactOptions opt;
  opt.min_height = 2;
  const SapExactResult r = sap_exact_profile_dp(inst, opt);
  // Only one task fits in [2, 6).
  EXPECT_EQ(r.weight, 5);
  for (const Placement& p : r.solution.placements) {
    EXPECT_GE(p.height, 2);
  }
}

TEST(ProfileDpTest, MatchesBruteForceOnRandomTinyInstances) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    PathGenOptions opt;
    opt.num_edges = static_cast<std::size_t>(rng.uniform_int(2, 6));
    opt.num_tasks = static_cast<std::size_t>(rng.uniform_int(2, 8));
    opt.profile = static_cast<CapacityProfile>(rng.uniform_int(0, 4));
    opt.min_capacity = 2;
    opt.max_capacity = 8;
    const PathInstance inst = generate_path_instance(opt, rng);
    const SapSolution brute = sap_brute_force(inst);
    const SapExactResult dp = sap_exact_profile_dp(inst);
    ASSERT_TRUE(dp.proven_optimal) << "trial " << trial;
    ASSERT_TRUE(verify_sap(inst, dp.solution))
        << verify_sap(inst, dp.solution).reason;
    EXPECT_EQ(dp.weight, brute.weight(inst)) << "trial " << trial;
    EXPECT_EQ(dp.solution.weight(inst), dp.weight);
  }
}

TEST(ProfileDpTest, GroundedHeuristicIsFeasibleLowerBound) {
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 6;
    opt.num_tasks = 8;
    opt.min_capacity = 4;
    opt.max_capacity = 10;
    const PathInstance inst = generate_path_instance(opt, rng);
    SapExactOptions heuristic;
    heuristic.grounded_only = true;
    const SapExactResult h = sap_exact_profile_dp(inst, heuristic);
    EXPECT_FALSE(h.proven_optimal);
    EXPECT_TRUE(verify_sap(inst, h.solution));
    const SapExactResult exact = sap_exact_profile_dp(inst);
    EXPECT_LE(h.weight, exact.weight);
    // On these tiny instances the heuristic is usually optimal too; it must
    // at least find a non-trivial solution whenever one exists.
    if (exact.weight > 0) {
      EXPECT_GT(h.weight, 0);
    }
  }
}

TEST(ProfileDpTest, BeamCapTruncatesButStaysFeasible) {
  Rng rng(107);
  PathGenOptions opt;
  opt.num_edges = 5;
  opt.num_tasks = 10;
  opt.min_capacity = 6;
  opt.max_capacity = 12;
  const PathInstance inst = generate_path_instance(opt, rng);
  SapExactOptions tight;
  tight.max_states = 4;
  const SapExactResult r = sap_exact_profile_dp(inst, tight);
  EXPECT_TRUE(verify_sap(inst, r.solution));
  const SapExactResult full = sap_exact_profile_dp(inst);
  EXPECT_LE(r.weight, full.weight);
}

TEST(UfppProfileDpTest, CrossValidatesBranchAndBound) {
  // Two independently implemented exact UFPP solvers must agree.
  Rng rng(367);
  for (int trial = 0; trial < 40; ++trial) {
    PathGenOptions opt;
    opt.num_edges = static_cast<std::size_t>(rng.uniform_int(2, 8));
    opt.num_tasks = static_cast<std::size_t>(rng.uniform_int(2, 12));
    opt.profile = static_cast<CapacityProfile>(rng.uniform_int(0, 4));
    opt.min_capacity = 3;
    opt.max_capacity = 14;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppProfileDpResult dp = ufpp_exact_profile_dp(inst);
    const UfppExactResult bb = ufpp_exact(inst);
    ASSERT_TRUE(dp.proven_optimal);
    ASSERT_TRUE(bb.proven_optimal);
    ASSERT_TRUE(verify_ufpp(inst, dp.solution))
        << verify_ufpp(inst, dp.solution).reason;
    EXPECT_EQ(dp.weight, bb.weight) << "trial " << trial;
    EXPECT_EQ(dp.solution.weight(inst), dp.weight);
  }
}

TEST(UfppProfileDpTest, BeamCapDegradesGracefully) {
  Rng rng(373);
  PathGenOptions opt;
  opt.num_edges = 6;
  opt.num_tasks = 14;
  const PathInstance inst = generate_path_instance(opt, rng);
  UfppProfileDpOptions tight;
  tight.max_states = 2;
  const UfppProfileDpResult r = ufpp_exact_profile_dp(inst, tight);
  EXPECT_TRUE(verify_ufpp(inst, r.solution));
  const UfppProfileDpResult full = ufpp_exact_profile_dp(inst);
  EXPECT_LE(r.weight, full.weight);
}

TEST(ProfileDpTest, SubsetRestriction) {
  const PathInstance inst({4}, {Task{0, 0, 4, 100}, Task{0, 0, 2, 1},
                                Task{0, 0, 2, 1}});
  const std::vector<TaskId> subset{1, 2};
  const SapExactResult r = sap_exact_profile_dp(inst, subset, {});
  EXPECT_EQ(r.weight, 2);
}

}  // namespace
}  // namespace sap
