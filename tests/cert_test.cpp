// Certification subsystem tests: every ladder rung is a true upper bound on
// the exact optimum across a tiny-instance sweep, solver-produced
// certificates pass the independent checker, and hand-mutated certificates
// (wrong weights, tampered bounds, hostile dual witnesses, infeasible
// solutions, mismatched kinds) are rejected.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/cert/certify.hpp"
#include "src/cert/check.hpp"
#include "src/cert/ladder.hpp"
#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/io/instance_io.hpp"
#include "src/sapu/sapu_solver.hpp"

namespace sap {
namespace {

PathGenOptions tiny_gen() {
  PathGenOptions gen;
  gen.num_edges = 6;
  gen.num_tasks = 8;
  gen.min_capacity = 4;
  gen.max_capacity = 12;
  return gen;
}

PathInstance tiny_instance(std::uint64_t seed) {
  Rng rng(seed);
  return generate_path_instance(tiny_gen(), rng);
}

RingInstance tiny_ring(std::uint64_t seed) {
  RingGenOptions gen;
  gen.num_edges = 6;
  gen.num_tasks = 8;
  gen.min_capacity = 4;
  gen.max_capacity = 12;
  Rng rng(seed);
  return generate_ring_instance(gen, rng);
}

/// Ladder options restricted to one rung (plus the unconditional
/// total_weight fallback, which cannot be disabled).
cert::LadderOptions only_rung(cert::UbRung rung) {
  cert::LadderOptions options;
  options.try_exact_dp = rung == cert::UbRung::kExactDp;
  options.try_ufpp_bnb = rung == cert::UbRung::kUfppBnb;
  options.try_lp_dual = rung == cert::UbRung::kLpDual;
  return options;
}

// --- Upper-bound ladder -----------------------------------------------------

TEST(LadderTest, EveryRungUpperBoundsExactOptOnTinySweep) {
  const cert::UbRung rungs[] = {
      cert::UbRung::kExactDp, cert::UbRung::kUfppBnb, cert::UbRung::kLpDual,
      cert::UbRung::kTotalWeight};
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const PathInstance inst = tiny_instance(seed);
    const SapExactResult exact = sap_exact_profile_dp(inst);
    ASSERT_TRUE(exact.proven_optimal) << "seed " << seed;
    for (const cert::UbRung rung : rungs) {
      const cert::LadderResult ladder =
          run_upper_bound_ladder(inst, only_rung(rung));
      ASSERT_TRUE(ladder.proven)
          << "seed " << seed << ", rung " << cert::ub_rung_name(rung);
      EXPECT_GE(ladder.best.value, exact.weight)
          << "seed " << seed << ", rung "
          << cert::ub_rung_name(ladder.best.rung)
          << " claims a bound below the exact optimum";
    }
  }
}

TEST(LadderTest, ExactRungMatchesProfileDpExactly) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const PathInstance inst = tiny_instance(seed);
    const SapExactResult exact = sap_exact_profile_dp(inst);
    ASSERT_TRUE(exact.proven_optimal);
    const cert::LadderResult ladder = cert::run_upper_bound_ladder(inst);
    ASSERT_TRUE(ladder.proven);
    EXPECT_EQ(ladder.best.rung, cert::UbRung::kExactDp);
    EXPECT_EQ(ladder.best.value, exact.weight);
  }
}

TEST(LadderTest, RungOrderingIsMonotone) {
  // Looser rungs never beat tighter ones: exact <= bnb <= lp <= sum w.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const PathInstance inst = tiny_instance(seed);
    Weight previous = -1;
    for (const cert::UbRung rung :
         {cert::UbRung::kExactDp, cert::UbRung::kUfppBnb,
          cert::UbRung::kLpDual, cert::UbRung::kTotalWeight}) {
      const cert::LadderResult ladder =
          run_upper_bound_ladder(inst, only_rung(rung));
      ASSERT_TRUE(ladder.proven);
      EXPECT_GE(ladder.best.value, previous)
          << "seed " << seed << ": rung " << cert::ub_rung_name(rung)
          << " is tighter than a tighter rung";
      previous = ladder.best.value;
    }
  }
}

TEST(LadderTest, AttemptsRecordEveryRungTried) {
  const PathInstance inst = tiny_instance(3);
  const cert::LadderResult ladder = cert::run_upper_bound_ladder(inst);
  ASSERT_TRUE(ladder.proven);
  ASSERT_FALSE(ladder.attempts.empty());
  // First rung that proves wins; on a tiny instance that is exact_dp, so
  // exactly one attempt is recorded and it proved.
  EXPECT_EQ(ladder.attempts.front().rung, cert::UbRung::kExactDp);
  EXPECT_TRUE(ladder.attempts.front().proved);
}

TEST(LadderTest, RingLadderBoundsTheRingSolver) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RingInstance ring = tiny_ring(seed);
    const RingSapSolution sol = solve_ring_sap(ring);
    ASSERT_TRUE(verify_ring_sap(ring, sol)) << "seed " << seed;
    const cert::LadderResult ladder = cert::run_ring_upper_bound_ladder(ring);
    ASSERT_TRUE(ladder.proven) << "seed " << seed;
    EXPECT_GE(ladder.best.value, ring.solution_weight(sol)) << "seed " << seed;
  }
}

// --- Producer + independent checker ----------------------------------------

TEST(CertifyTest, SolverProducedCertificatesPassTheChecker) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const PathInstance inst = tiny_instance(seed);
    SolverParams params;
    params.seed = seed;
    const SapSolution sol = solve_sap(inst, params);
    const cert::CertifyOutcome outcome = cert::certify_solution(inst, sol);
    ASSERT_TRUE(outcome.feasible) << "seed " << seed;
    ASSERT_TRUE(outcome.certified) << outcome.detail;
    const cert::CheckResult check =
        cert::check_certificate(inst, sol, outcome.cert);
    EXPECT_TRUE(check.valid) << "seed " << seed << ": " << check.reason;
    // The certified ratio is a real inequality: w * num >= ub * den.
    EXPECT_GE(outcome.cert.ub.value, outcome.cert.solution_weight);
  }
}

TEST(CertifyTest, CertifiedWrappersRoundTrip) {
  const PathInstance inst = tiny_instance(7);
  const cert::CertifiedSapSolve full = cert::solve_sap_certified(inst);
  ASSERT_TRUE(full.outcome.certified) << full.outcome.detail;
  EXPECT_TRUE(
      cert::check_certificate(inst, full.solution, full.outcome.cert).valid);

  const cert::CertifiedSapSolve uniform =
      cert::solve_sap_uniform_certified(inst);
  ASSERT_TRUE(uniform.outcome.certified) << uniform.outcome.detail;
  EXPECT_TRUE(
      cert::check_certificate(inst, uniform.solution, uniform.outcome.cert)
          .valid);

  const RingInstance ring = tiny_ring(7);
  const cert::CertifiedRingSolve rsolve = cert::solve_ring_sap_certified(ring);
  ASSERT_TRUE(rsolve.outcome.certified) << rsolve.outcome.detail;
  EXPECT_TRUE(
      cert::check_certificate(ring, rsolve.solution, rsolve.outcome.cert)
          .valid);
}

TEST(CertifyTest, EmptySolutionGetsNoFiniteRatio) {
  const PathInstance inst = tiny_instance(5);
  const SapSolution empty;
  const cert::CertifyOutcome outcome = cert::certify_solution(inst, empty);
  ASSERT_TRUE(outcome.certified) << outcome.detail;
  EXPECT_EQ(outcome.cert.solution_weight, 0);
  EXPECT_GT(outcome.cert.ub.value, 0);
  EXPECT_EQ(outcome.cert.alpha_den, 0);  // "no finite ratio"
  EXPECT_TRUE(cert::check_certificate(inst, empty, outcome.cert).valid);
}

TEST(CertifyTest, InfeasibleSolutionIsNotCertified) {
  const PathInstance inst = tiny_instance(5);
  SapSolution bogus;
  bogus.placements.push_back({0, Value{-1}});  // negative height
  const cert::CertifyOutcome outcome = cert::certify_solution(inst, bogus);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_FALSE(outcome.certified);
  EXPECT_NE(outcome.detail.find("infeasible"), std::string::npos);
}

// --- Mutation rejection -----------------------------------------------------

/// Fixture holding one certified (instance, solution, certificate) triple;
/// each test mutates one aspect and expects rejection.
class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = tiny_instance(11);
    sol_ = solve_sap(inst_);
    const cert::CertifyOutcome outcome = cert::certify_solution(inst_, sol_);
    ASSERT_TRUE(outcome.certified) << outcome.detail;
    cert_ = outcome.cert;
    ASSERT_TRUE(cert::check_certificate(inst_, sol_, cert_).valid);

    // A second certificate pinned to the lp_dual rung, for dual-witness
    // mutations.
    cert::CertifyOptions lp_only;
    lp_only.ladder = only_rung(cert::UbRung::kLpDual);
    const cert::CertifyOutcome lp_outcome =
        cert::certify_solution(inst_, sol_, lp_only);
    ASSERT_TRUE(lp_outcome.certified) << lp_outcome.detail;
    ASSERT_EQ(lp_outcome.cert.ub.rung, cert::UbRung::kLpDual);
    lp_cert_ = lp_outcome.cert;
    ASSERT_TRUE(cert::check_certificate(inst_, sol_, lp_cert_).valid);
  }

  void expect_rejected(const cert::Certificate& cert, const char* what) {
    const cert::CheckResult check =
        cert::check_certificate(inst_, sol_, cert);
    EXPECT_FALSE(check.valid) << what << " was accepted";
    EXPECT_FALSE(check.reason.empty()) << what;
  }

  PathInstance inst_;
  SapSolution sol_;
  cert::Certificate cert_;
  cert::Certificate lp_cert_;
};

TEST_F(MutationTest, InflatedSolutionWeight) {
  cert::Certificate c = cert_;
  c.solution_weight += 1;
  expect_rejected(c, "inflated solution weight");
}

TEST_F(MutationTest, DeflatedSolutionWeight) {
  cert::Certificate c = cert_;
  c.solution_weight -= 1;
  expect_rejected(c, "deflated solution weight");
}

TEST_F(MutationTest, TamperedExactBound) {
  cert::Certificate c = cert_;
  ASSERT_EQ(c.ub.rung, cert::UbRung::kExactDp);
  c.ub.value += 1;  // no longer equals the recomputed exact optimum
  expect_rejected(c, "tampered exact_dp bound");
}

TEST_F(MutationTest, TamperedTotalWeightBound) {
  cert::Certificate c = cert_;
  c.ub.rung = cert::UbRung::kTotalWeight;
  c.ub.value += 12345;  // does not equal sum of weights
  expect_rejected(c, "tampered total_weight bound");
}

TEST_F(MutationTest, OverstatedRatioClaim) {
  cert::Certificate c = cert_;
  if (c.solution_weight == c.ub.value) GTEST_SKIP() << "solve was optimal";
  c.alpha_num = 1;
  c.alpha_den = 1;  // claims w(S) >= UB, which is false here
  expect_rejected(c, "overstated ratio claim");
}

TEST_F(MutationTest, MalformedRatioClaim) {
  cert::Certificate c = cert_;
  c.alpha_num = 0;
  c.alpha_den = 0;
  expect_rejected(c, "0/0 ratio claim");
  c = cert_;
  c.alpha_num = -1;
  expect_rejected(c, "negative ratio claim");
}

TEST_F(MutationTest, WrongKind) {
  cert::Certificate c = cert_;
  c.kind = cert::Certificate::Kind::kRing;
  expect_rejected(c, "ring certificate for a path instance");
}

TEST_F(MutationTest, TamperedDualBound) {
  cert::Certificate c = lp_cert_;
  c.ub.value -= 1;  // no longer matches the witness evaluation
  expect_rejected(c, "tampered lp_dual bound");
}

TEST_F(MutationTest, NegativeDualPrice) {
  cert::Certificate c = lp_cert_;
  ASSERT_FALSE(c.ub.dual.edge_price.empty());
  c.ub.dual.edge_price[0] = -1;
  expect_rejected(c, "negative dual price");
}

TEST_F(MutationTest, WrongDualPriceCount) {
  cert::Certificate c = lp_cert_;
  c.ub.dual.edge_price.pop_back();
  expect_rejected(c, "short dual price vector");
}

TEST_F(MutationTest, NonPositiveDualScale) {
  cert::Certificate c = lp_cert_;
  c.ub.dual.scale = 0;
  expect_rejected(c, "zero dual scale");
}

TEST_F(MutationTest, MutatedSolutionDuplicateTask) {
  ASSERT_FALSE(sol_.placements.empty());
  SapSolution bad = sol_;
  bad.placements.push_back(bad.placements.front());
  EXPECT_FALSE(cert::check_certificate(inst_, bad, cert_).valid);
}

TEST_F(MutationTest, MutatedSolutionNegativeHeight) {
  ASSERT_FALSE(sol_.placements.empty());
  SapSolution bad = sol_;
  bad.placements.front().height = -1;
  EXPECT_FALSE(cert::check_certificate(inst_, bad, cert_).valid);
}

TEST_F(MutationTest, MutatedSolutionAboveCapacity) {
  ASSERT_FALSE(sol_.placements.empty());
  SapSolution bad = sol_;
  bad.placements.front().height = Value{1} << 40;
  EXPECT_FALSE(cert::check_certificate(inst_, bad, cert_).valid);
}

TEST_F(MutationTest, MutatedSolutionOutOfRangeTask) {
  SapSolution bad = sol_;
  bad.placements.push_back(
      {static_cast<TaskId>(inst_.num_tasks()), Value{0}});
  EXPECT_FALSE(cert::check_certificate(inst_, bad, cert_).valid);
}

TEST(CheckTest, ExactRungBeyondVerifierBudgetIsUnverifiable) {
  const PathInstance inst = tiny_instance(4);
  const SapSolution sol = solve_sap(inst);
  const cert::CertifyOutcome outcome = cert::certify_solution(inst, sol);
  ASSERT_TRUE(outcome.certified);
  ASSERT_EQ(outcome.cert.ub.rung, cert::UbRung::kExactDp);
  cert::CheckOptions strict;
  strict.exact_recheck_max_tasks = 2;  // below this instance's task count
  const cert::CheckResult check =
      cert::check_certificate(inst, sol, outcome.cert, strict);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.reason.find("unverifiable"), std::string::npos)
      << check.reason;
}

TEST(CheckTest, RingCertificateRejectsExactRungs) {
  const RingInstance ring = tiny_ring(3);
  const cert::CertifiedRingSolve solve = cert::solve_ring_sap_certified(ring);
  ASSERT_TRUE(solve.outcome.certified) << solve.outcome.detail;
  cert::Certificate c = solve.outcome.cert;
  c.ub.rung = cert::UbRung::kExactDp;
  EXPECT_FALSE(cert::check_certificate(ring, solve.solution, c).valid);
}

TEST(CheckTest, RingMutationsAreRejected) {
  const RingInstance ring = tiny_ring(9);
  const cert::CertifiedRingSolve solve = cert::solve_ring_sap_certified(ring);
  ASSERT_TRUE(solve.outcome.certified) << solve.outcome.detail;
  ASSERT_TRUE(
      cert::check_certificate(ring, solve.solution, solve.outcome.cert)
          .valid);

  cert::Certificate c = solve.outcome.cert;
  c.solution_weight += 1;
  EXPECT_FALSE(cert::check_certificate(ring, solve.solution, c).valid);

  c = solve.outcome.cert;
  c.kind = cert::Certificate::Kind::kPath;
  EXPECT_FALSE(cert::check_certificate(ring, solve.solution, c).valid);

  if (!solve.solution.placements.empty()) {
    RingSapSolution bad = solve.solution;
    bad.placements.push_back(bad.placements.front());
    EXPECT_FALSE(
        cert::check_certificate(ring, bad, solve.outcome.cert).valid);
  }
}

// --- Certificate text round-trip (producer -> io -> checker) ---------------

TEST(CertifyTest, CertificateSurvivesTextRoundTrip) {
  const PathInstance inst = tiny_instance(13);
  const SapSolution sol = solve_sap(inst);

  // Pin the lp_dual rung so the round-trip covers the dual witness too.
  cert::CertifyOptions lp_only;
  lp_only.ladder = only_rung(cert::UbRung::kLpDual);
  const cert::CertifyOutcome outcome =
      cert::certify_solution(inst, sol, lp_only);
  ASSERT_TRUE(outcome.certified) << outcome.detail;

  std::stringstream ss;
  write_certificate(ss, outcome.cert);
  const cert::Certificate parsed = read_certificate(ss);
  EXPECT_EQ(parsed.kind, outcome.cert.kind);
  EXPECT_EQ(parsed.solution_weight, outcome.cert.solution_weight);
  EXPECT_EQ(parsed.ub.rung, outcome.cert.ub.rung);
  EXPECT_EQ(parsed.ub.value, outcome.cert.ub.value);
  EXPECT_EQ(parsed.alpha_num, outcome.cert.alpha_num);
  EXPECT_EQ(parsed.alpha_den, outcome.cert.alpha_den);
  EXPECT_EQ(parsed.ub.dual.scale, outcome.cert.ub.dual.scale);
  EXPECT_EQ(parsed.ub.dual.edge_price, outcome.cert.ub.dual.edge_price);
  EXPECT_TRUE(cert::check_certificate(inst, sol, parsed).valid);
}

}  // namespace
}  // namespace sap
