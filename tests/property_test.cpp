// Parameterized property tests over randomized workloads: the paper's
// structural observations must hold on every instance and every solution
// the library produces.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/model/gravity.hpp"
#include "src/model/verify.hpp"
#include "src/ufpp/branch_and_bound.hpp"

namespace sap {
namespace {

struct PropertyCase {
  CapacityProfile profile;
  DemandClass demand;
  std::uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  static const char* profiles[] = {"Uniform", "Valley", "Mountain",
                                   "Staircase", "RandomWalk"};
  static const char* demands[] = {"Small", "Medium", "Large", "Mixed"};
  return std::string(profiles[static_cast<int>(info.param.profile)]) +
         demands[static_cast<int>(info.param.demand)] +
         std::to_string(info.param.seed);
}

class SapPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  PathInstance make_instance(std::size_t num_edges, std::size_t num_tasks,
                             Value cap_lo, Value cap_hi) {
    Rng rng(GetParam().seed * 7919 + 13);
    PathGenOptions opt;
    opt.num_edges = num_edges;
    opt.num_tasks = num_tasks;
    opt.profile = GetParam().profile;
    opt.demand = GetParam().demand;
    opt.min_capacity = cap_lo;
    opt.max_capacity = cap_hi;
    return generate_path_instance(opt, rng);
  }

  static std::vector<TaskId> all_ids(const PathInstance& inst) {
    std::vector<TaskId> ids(inst.num_tasks());
    std::iota(ids.begin(), ids.end(), TaskId{0});
    return ids;
  }
};

TEST_P(SapPropertyTest, Observation1LoadBoundedByTwiceMaxBottleneck) {
  const PathInstance inst = make_instance(10, 14, 4, 24);
  const UfppExactResult sol = ufpp_exact(inst);
  if (sol.solution.empty()) GTEST_SKIP();
  Value max_b = 0;
  for (TaskId j : sol.solution.tasks) {
    max_b = std::max(max_b, inst.bottleneck(j));
  }
  EXPECT_LE(max_load(inst, sol.solution.tasks), 2 * max_b);
}

TEST_P(SapPropertyTest, Observation2MakespanBoundedByMaxBottleneck) {
  // Observation 2 holds for every feasible solution, so a beam-truncated DP
  // result (proven_optimal == false) is still a valid witness.
  const PathInstance inst = make_instance(8, 10, 4, 16);
  SapExactOptions opt;
  opt.max_states = 100'000;
  const SapExactResult sol = sap_exact_profile_dp(inst, opt);
  if (sol.solution.empty()) GTEST_SKIP();
  Value max_b = 0;
  for (const Placement& p : sol.solution.placements) {
    max_b = std::max(max_b, inst.bottleneck(p.task));
  }
  EXPECT_LE(max_makespan(inst, sol.solution), max_b);
}

TEST_P(SapPropertyTest, LoadNeverExceedsMakespan) {
  const PathInstance inst = make_instance(8, 10, 4, 16);
  SapExactOptions opt;
  opt.max_states = 100'000;
  const SapExactResult sol = sap_exact_profile_dp(inst, opt);
  const auto loads = edge_loads(inst, sol.solution.to_ufpp().tasks);
  const auto spans = edge_makespans(inst, sol.solution);
  for (std::size_t e = 0; e < loads.size(); ++e) {
    EXPECT_LE(loads[e], spans[e]);
  }
}

TEST_P(SapPropertyTest, GravityPreservesWeightAndFeasibility) {
  const PathInstance inst = make_instance(8, 10, 4, 16);
  SapExactOptions opt;
  opt.max_states = 100'000;
  const SapExactResult sol = sap_exact_profile_dp(inst, opt);
  const SapSolution grounded = apply_gravity(inst, sol.solution);
  EXPECT_TRUE(verify_sap(inst, grounded));
  EXPECT_TRUE(is_grounded(inst, grounded));
  EXPECT_EQ(grounded.weight(inst), sol.solution.weight(inst));
}

TEST_P(SapPropertyTest, FullSolverFeasibleAndWithinBound) {
  const PathInstance inst = make_instance(8, 12, 4, 16);
  SolverParams params;
  params.eps = 1.0;
  const SapSolution sol = solve_sap(inst, params);
  ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  const SapExactResult opt = sap_exact_profile_dp(inst);
  if (!opt.proven_optimal) GTEST_SKIP() << "oracle beam cap hit";
  if (opt.weight == 0) GTEST_SKIP();
  // A conservative envelope of the (9+eps) guarantee at eps = 1.
  EXPECT_GE(10 * sol.weight(inst), opt.weight);
  EXPECT_LE(sol.weight(inst), opt.weight);
}

TEST_P(SapPropertyTest, SapOptimumNeverExceedsUfppOptimum) {
  const PathInstance inst = make_instance(7, 9, 4, 12);
  const SapExactResult sap_opt = sap_exact_profile_dp(inst);
  const UfppExactResult ufpp_opt = ufpp_exact(inst);
  ASSERT_TRUE(sap_opt.proven_optimal);
  ASSERT_TRUE(ufpp_opt.proven_optimal);
  EXPECT_LE(sap_opt.weight, ufpp_opt.weight);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SapPropertyTest,
    testing::ValuesIn([] {
      std::vector<PropertyCase> cases;
      for (CapacityProfile profile :
           {CapacityProfile::kUniform, CapacityProfile::kValley,
            CapacityProfile::kMountain, CapacityProfile::kStaircase,
            CapacityProfile::kRandomWalk}) {
        for (DemandClass demand :
             {DemandClass::kSmall, DemandClass::kMedium, DemandClass::kLarge,
              DemandClass::kMixed}) {
          for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
            cases.push_back({profile, demand, seed});
          }
        }
      }
      return cases;
    }()),
    CaseName);

}  // namespace
}  // namespace sap
