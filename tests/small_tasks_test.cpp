// Tests for the Strip-Pack small-task pipeline (Theorem 1).
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/small_tasks.hpp"
#include "src/gen/generators.hpp"
#include "src/harness/ratio_harness.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

PathInstance small_instance(Rng& rng, CapacityProfile profile,
                            std::size_t num_tasks = 40) {
  PathGenOptions opt;
  opt.num_edges = 12;
  opt.num_tasks = num_tasks;
  opt.profile = profile;
  opt.min_capacity = 16;
  opt.max_capacity = 64;
  opt.demand = DemandClass::kSmall;
  opt.delta = {1, 8};
  return generate_path_instance(opt, rng);
}

TEST(SmallTasksTest, AlwaysFeasibleBothBackends) {
  Rng rng(109);
  for (int trial = 0; trial < 12; ++trial) {
    const auto profile = static_cast<CapacityProfile>(trial % 5);
    const PathInstance inst = small_instance(rng, profile);
    for (SmallTaskBackend backend :
         {SmallTaskBackend::kLocalRatio, SmallTaskBackend::kLpRounding}) {
      SolverParams params;
      params.small_backend = backend;
      const SapSolution sol =
          solve_small_tasks(inst, all_ids(inst), params);
      ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
    }
  }
}

TEST(SmallTasksTest, StripsLandInTheirOctaveBand) {
  Rng rng(113);
  const PathInstance inst = small_instance(rng, CapacityProfile::kValley);
  SolverParams params;
  const SapSolution sol = solve_small_tasks(inst, all_ids(inst), params);
  for (const Placement& p : sol.placements) {
    const Value b = inst.bottleneck(p.task);
    Value big_b = 1;
    while (big_b * 2 <= b) big_b *= 2;  // 2^t <= b < 2^(t+1)
    EXPECT_GE(p.height, big_b / 2);
    EXPECT_LE(p.height + inst.task(p.task).demand, big_b);
  }
}

TEST(SmallTasksTest, ReportsPerStripRetention) {
  Rng rng(127);
  const PathInstance inst = small_instance(rng, CapacityProfile::kUniform);
  SolverParams params;
  SmallTasksReport report;
  const SapSolution sol =
      solve_small_tasks(inst, all_ids(inst), params, &report);
  ASSERT_FALSE(report.strips.empty());
  Weight total = 0;
  for (const StripInfo& s : report.strips) {
    EXPECT_GE(s.retention, 0.0);
    EXPECT_LE(s.retention, 1.0);
    total += s.kept_weight;
  }
  EXPECT_EQ(total, sol.weight(inst));
}

TEST(SmallTasksTest, NonTrivialWeightAgainstOptBound) {
  // Measured ratio sanity: on uniform delta-small instances the pipeline
  // should land well inside the (4+eps) guarantee of Theorem 1 (we allow
  // slack for small-n effects; bench_small_tasks sweeps this properly).
  Rng rng(131);
  for (int trial = 0; trial < 8; ++trial) {
    const PathInstance inst = small_instance(rng, CapacityProfile::kUniform);
    SolverParams params;
    const SapSolution sol = solve_small_tasks(inst, all_ids(inst), params);
    const RatioMeasurement m = measure_ratio(inst, sol);
    EXPECT_LT(m.ratio, 10.0) << "trial " << trial;
  }
}

TEST(SmallTasksTest, EmptySubset) {
  Rng rng(137);
  const PathInstance inst = small_instance(rng, CapacityProfile::kUniform);
  SolverParams params;
  const SapSolution sol = solve_small_tasks(inst, {}, params);
  EXPECT_TRUE(sol.empty());
}

}  // namespace
}  // namespace sap
