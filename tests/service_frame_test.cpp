// Unit tests for the sapd wire protocol: header codec, fd-level framing
// (over pipes — no network needed), and the text envelopes.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "src/service/frame.hpp"
#include "src/service/protocol.hpp"

namespace sap::service {
namespace {

/// RAII pipe pair for framing tests.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
  [[nodiscard]] int r() const { return fds[0]; }
  [[nodiscard]] int w() const { return fds[1]; }
};

TEST(FrameHeaderTest, EncodeDecodeRoundTrip) {
  unsigned char bytes[kFrameHeaderBytes];
  encode_frame_header(bytes, FrameType::kSolveRequest, 0xDEADBEEF);
  FrameHeader header;
  ASSERT_TRUE(decode_frame_header(bytes, &header));
  EXPECT_EQ(header.magic, kFrameMagic);
  EXPECT_EQ(header.type,
            static_cast<std::uint32_t>(FrameType::kSolveRequest));
  EXPECT_EQ(header.length, 0xDEADBEEFu);
}

TEST(FrameHeaderTest, WireLayoutIsLittleEndianWithSapdMagic) {
  unsigned char bytes[kFrameHeaderBytes];
  encode_frame_header(bytes, FrameType::kStatsRequest, 0x0102);
  // Magic reads "SAPD" as raw bytes.
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'A');
  EXPECT_EQ(bytes[2], 'P');
  EXPECT_EQ(bytes[3], 'D');
  EXPECT_EQ(bytes[4], 2);  // type LE
  EXPECT_EQ(bytes[8], 0x02);  // length LE
  EXPECT_EQ(bytes[9], 0x01);
}

TEST(FrameHeaderTest, RejectsBadMagic) {
  unsigned char bytes[kFrameHeaderBytes] = {'n', 'o', 'p', 'e'};
  FrameHeader header;
  EXPECT_FALSE(decode_frame_header(bytes, &header));
}

TEST(FrameIoTest, RoundTripOverPipe) {
  Pipe pipe;
  const std::string payload = "sapd-solve v1\nhello";
  ASSERT_TRUE(write_frame(pipe.w(), FrameType::kSolveRequest, payload));
  Frame frame;
  ASSERT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kSolveRequest));
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameIoTest, EmptyPayloadFrame) {
  Pipe pipe;
  ASSERT_TRUE(write_frame(pipe.w(), FrameType::kStatsRequest, ""));
  Frame frame;
  ASSERT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kStatsRequest));
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameIoTest, CleanCloseIsEof) {
  Pipe pipe;
  pipe.close_write();
  Frame frame;
  EXPECT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kEof);
}

TEST(FrameIoTest, CloseInsideHeaderIsTruncated) {
  Pipe pipe;
  const unsigned char partial[3] = {'S', 'A', 'P'};
  ASSERT_EQ(::write(pipe.w(), partial, sizeof(partial)), 3);
  pipe.close_write();
  Frame frame;
  EXPECT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kTruncated);
}

TEST(FrameIoTest, CloseInsidePayloadIsTruncated) {
  Pipe pipe;
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(header, FrameType::kSolveRequest, 100);
  ASSERT_EQ(::write(pipe.w(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  ASSERT_EQ(::write(pipe.w(), "abc", 3), 3);
  pipe.close_write();
  Frame frame;
  EXPECT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kTruncated);
}

TEST(FrameIoTest, GarbageMagicRejected) {
  Pipe pipe;
  const unsigned char garbage[kFrameHeaderBytes] = {0xff, 0xfe, 0xfd, 0xfc};
  ASSERT_EQ(::write(pipe.w(), garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  Frame frame;
  EXPECT_EQ(read_frame(pipe.r(), &frame), ReadStatus::kBadMagic);
}

TEST(FrameIoTest, OversizedDeclaredLengthRejectedBeforeRead) {
  Pipe pipe;
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(header, FrameType::kSolveRequest, 1 << 20);
  ASSERT_EQ(::write(pipe.w(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  // Ceiling below the declared length: rejected without reading a payload
  // byte (nothing was even written into the pipe).
  EXPECT_EQ(read_frame(pipe.r(), &frame, /*max_payload=*/1024),
            ReadStatus::kTooLarge);
}

TEST(FrameIoTest, LargePayloadCrossesPipeBufferBoundary) {
  Pipe pipe;
  // Larger than the default 64 KiB pipe buffer: forces partial reads and
  // writes, so a writer thread is required.
  const std::string payload(1 << 20, 'x');
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(pipe.w(), FrameType::kSolveResponse, payload));
  });
  Frame frame;
  EXPECT_EQ(read_frame(pipe.r(), &frame, payload.size()), ReadStatus::kOk);
  writer.join();
  EXPECT_EQ(frame.payload, payload);
}

TEST(ProtocolTest, SolveRequestRoundTrip) {
  SolveRequest request;
  request.kind = SolveRequest::Kind::kRing;
  request.algo = "full";
  request.eps = 0.1;  // not exactly representable — hexfloat must round-trip
  request.seed = 0xDEADBEEFCAFEull;
  request.instance_text = "sap-ring v1\nedges 3\n# comment\n";
  const SolveRequest back = parse_solve_request(encode_solve_request(request));
  EXPECT_EQ(back.kind, SolveRequest::Kind::kRing);
  EXPECT_EQ(back.algo, request.algo);
  EXPECT_EQ(back.eps, request.eps);  // bit-exact
  EXPECT_EQ(back.seed, request.seed);
  EXPECT_EQ(back.instance_text, request.instance_text);
}

TEST(ProtocolTest, SolveResponseRoundTrip) {
  SolveResponse response;
  response.weight = -7;
  response.placed = 3;
  response.total_tasks = 9;
  response.wall_micros = 123456;
  response.telemetry_json = "{\"sap.winner.small\": 1}";
  response.solution_text = "sap-solution v1\nplacements 1\n0 4\n";
  const SolveResponse back =
      parse_solve_response(encode_solve_response(response));
  EXPECT_EQ(back.weight, response.weight);
  EXPECT_EQ(back.placed, response.placed);
  EXPECT_EQ(back.total_tasks, response.total_tasks);
  EXPECT_EQ(back.wall_micros, response.wall_micros);
  EXPECT_EQ(back.telemetry_json, response.telemetry_json);
  EXPECT_EQ(back.solution_text, response.solution_text);
}

TEST(ProtocolTest, ErrorResponseRoundTripIncludingMultilineMessage) {
  const ErrorResponse error{ErrorCode::kBadRequest,
                            "instance_io: line 3: expected capacity\nmore"};
  const ErrorResponse back =
      parse_error_response(encode_error_response(error));
  EXPECT_EQ(back.code, ErrorCode::kBadRequest);
  EXPECT_EQ(back.message, error.message);
}

TEST(ProtocolTest, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kOverloaded,
        ErrorCode::kShuttingDown, ErrorCode::kInternal,
        ErrorCode::kDeadlineExceeded}) {
    EXPECT_EQ(parse_error_code(error_code_name(code)), code);
  }
  EXPECT_THROW(parse_error_code("NOT_A_CODE"), std::invalid_argument);
}

TEST(ProtocolTest, DeadlineLineRoundTripsAndStaysOptional) {
  SolveRequest request;
  request.deadline_ms = 250;
  request.instance_text = "sap-path v1\nedges 1\n";
  const std::string payload = encode_solve_request(request);
  EXPECT_NE(payload.find("\ndeadline_ms 250\n"), std::string::npos);
  EXPECT_EQ(parse_solve_request(payload).deadline_ms, 250);

  // Old clients never emit the line; absence parses as "no deadline".
  request.deadline_ms = 0;
  const std::string old_payload = encode_solve_request(request);
  EXPECT_EQ(old_payload.find("deadline_ms"), std::string::npos);
  EXPECT_EQ(parse_solve_request(old_payload).deadline_ms, 0);

  // A non-positive deadline on the wire is a malformed request, not a
  // silent "unlimited".
  std::string bad = payload;
  bad.replace(bad.find("deadline_ms 250"), 15, "deadline_ms 0\n ");
  EXPECT_THROW((void)parse_solve_request(bad), std::invalid_argument);
}

TEST(ProtocolTest, DegradedResponseRoundTripsAndStaysOptional) {
  SolveResponse response;
  response.weight = 4;
  response.degraded = true;
  response.skipped = "solve.exact,cert.sap_exact_dp";
  response.telemetry_json = "{}";
  response.solution_text = "sap-solution v1\nplacements 0\n";
  const std::string payload = encode_solve_response(response);
  EXPECT_NE(payload.find("\ndegraded 1\n"), std::string::npos);
  EXPECT_NE(payload.find("\nskipped solve.exact,cert.sap_exact_dp\n"),
            std::string::npos);
  const SolveResponse back = parse_solve_response(payload);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.skipped, response.skipped);

  // Responses from servers that never degrade omit both lines.
  response.degraded = false;
  response.skipped.clear();
  const std::string plain = encode_solve_response(response);
  EXPECT_EQ(plain.find("degraded"), std::string::npos);
  EXPECT_EQ(plain.find("skipped"), std::string::npos);
  const SolveResponse plain_back = parse_solve_response(plain);
  EXPECT_FALSE(plain_back.degraded);
  EXPECT_TRUE(plain_back.skipped.empty());
}

TEST(FrameIoTest, ReceiveTimeoutIsTypedNotIoError) {
  // SO_RCVTIMEO needs a socket; a unix socketpair stands in for TCP.
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  timeval tv{.tv_sec = 0, .tv_usec = 50'000};
  ASSERT_EQ(::setsockopt(sv[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);

  // Peer sends nothing: the read times out before any header byte.
  Frame frame;
  EXPECT_EQ(read_frame(sv[0], &frame), ReadStatus::kTimedOut);

  // Peer sends half a header and stalls: still a typed timeout, and the
  // caller's poisoned-connection contract applies.
  const unsigned char half[4] = {'S', 'A', 'P', 'D'};
  ASSERT_EQ(::write(sv[1], half, sizeof(half)), 4);
  EXPECT_EQ(read_frame(sv[0], &frame), ReadStatus::kTimedOut);

  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(FrameIoTest, WriteStatusNamesAreStable) {
  EXPECT_STREQ(write_status_name(WriteStatus::kOk), "OK");
  EXPECT_STREQ(write_status_name(WriteStatus::kTimedOut), "TIMED_OUT");
  EXPECT_STREQ(write_status_name(WriteStatus::kError), "IO_ERROR");
  EXPECT_STREQ(read_status_name(ReadStatus::kTimedOut), "TIMED_OUT");
}

TEST(ProtocolTest, CertifyRequestLineRoundTripsAndStaysOptional) {
  SolveRequest request;
  request.want_certificate = true;
  request.instance_text = "sap-path v1\nedges 1\n";
  const std::string payload = encode_solve_request(request);
  EXPECT_NE(payload.find("\ncertify 1\n"), std::string::npos);
  EXPECT_TRUE(parse_solve_request(payload).want_certificate);

  // Old clients never emit the line; absence parses as "no certificate".
  request.want_certificate = false;
  const std::string old_payload = encode_solve_request(request);
  EXPECT_EQ(old_payload.find("certify"), std::string::npos);
  EXPECT_FALSE(parse_solve_request(old_payload).want_certificate);
}

TEST(ProtocolTest, CertificateSectionRoundTripsNested) {
  SolveResponse response;
  response.weight = 12;
  response.telemetry_json = "{}";
  // The certificate text deliberately contains envelope keywords; the
  // length prefix is what delimits it, not line content.
  response.certificate_text =
      "sap-cert v1\nkind path\nweight 12\nrung total_weight\nub 30\n"
      "alpha 5 2\nprices 1 0\nend\n";
  response.solution_text = "sap-solution v1\nplacements 0\n";
  const SolveResponse back =
      parse_solve_response(encode_solve_response(response));
  EXPECT_EQ(back.certificate_text, response.certificate_text);
  EXPECT_EQ(back.solution_text, response.solution_text);

  // No certificate -> no section, and old parsers see the old envelope.
  response.certificate_text.clear();
  const std::string payload = encode_solve_response(response);
  EXPECT_EQ(payload.find("certificate"), std::string::npos);
  EXPECT_TRUE(parse_solve_response(payload).certificate_text.empty());
}

TEST(ProtocolTest, MalformedCertificateSectionsRejected) {
  EXPECT_THROW(parse_solve_request("sapd-solve v1\nkind path\nalgo full\n"
                                   "eps 0.5\nseed 1\ncertify 2\ninstance\n"),
               std::invalid_argument);
  const std::string head =
      "sapd-result v1\nweight 1\nplaced 0\ntasks 0\nwall_micros 1\n"
      "telemetry {}\n";
  EXPECT_THROW(parse_solve_response(head + "certificate -5\nsolution\n"),
               std::invalid_argument);
  // Declared length runs past the payload: truncated, not silently short.
  EXPECT_THROW(parse_solve_response(head + "certificate 9999\nabc"),
               std::invalid_argument);
  EXPECT_THROW(parse_solve_response(head + "certificate banana\nsolution\n"),
               std::invalid_argument);
}

TEST(ProtocolTest, MalformedEnvelopesRejected) {
  EXPECT_THROW(parse_solve_request(""), std::invalid_argument);
  EXPECT_THROW(parse_solve_request("sapd-solve v2\n"), std::invalid_argument);
  EXPECT_THROW(parse_solve_request("sapd-solve v1\nkind tree\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_solve_request("sapd-solve v1\nkind path\nalgo full\neps nan!\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_solve_request("sapd-solve v1\nkind path\nalgo full\n"
                                   "eps 0.5\nseed -1x\ninstance\n"),
               std::invalid_argument);
  // Missing the "instance" separator line.
  EXPECT_THROW(parse_solve_request("sapd-solve v1\nkind path\nalgo full\n"
                                   "eps 0.5\nseed 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_solve_response("sapd-result v1\nweight banana\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_error_response("sapd-error v1\ncode NOPE\nmessage x"),
               std::invalid_argument);
}

TEST(BatchProtocolTest, RequestRoundTripCarriesOpaqueBlobs) {
  // Inner payloads are carried opaquely — including ones with no trailing
  // newline, embedded NULs, and envelope-lookalike content.
  const std::vector<std::string> items = {
      "sapd-solve v1\nkind path\n...",
      std::string("raw\0bytes", 9),
      "request 999\n",  // must not confuse the outer parser
      "",
  };
  const std::string payload = encode_batch_solve_request(items);
  EXPECT_EQ(parse_batch_solve_request(payload, items.size()), items);
}

TEST(BatchProtocolTest, ResponseRoundTripPreservesPerSlotOutcome) {
  const std::vector<BatchItemResult> items = {
      {true, "sapd-result v1\n..."},
      {false, "sapd-error v1\ncode BAD_REQUEST\nmessage nope"},
      {true, std::string("\x01\x02", 2)},
  };
  const std::string payload = encode_batch_solve_response(items);
  const std::vector<BatchItemResult> parsed =
      parse_batch_solve_response(payload, items.size());
  ASSERT_EQ(parsed.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(parsed[i].ok, items[i].ok) << i;
    EXPECT_EQ(parsed[i].payload, items[i].payload) << i;
  }
}

TEST(BatchProtocolTest, OversizedBatchCountRejectedBeforeInnerParse) {
  // An attacker-declared count over the receiver limit must be rejected
  // from the count line alone — even when the declared items are absent, so
  // a parser that believed the count would read far past the buffer.
  const std::string hostile = "sapd-batch v1\ncount 1000000\n";
  try {
    (void)parse_batch_solve_request(hostile, kDefaultMaxBatchItems);
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("exceeds receiver limit"),
              std::string::npos)
        << error.what();
  }
  // Same guard on the response path (a hostile server).
  EXPECT_THROW(
      (void)parse_batch_solve_response("sapd-batch-result v1\ncount 50\n", 4),
      std::invalid_argument);
}

TEST(BatchProtocolTest, HostileBatchEnvelopesRejected) {
  // Truncated inner frame: declared 100 bytes, only a few present.
  EXPECT_THROW((void)parse_batch_solve_request(
                   "sapd-batch v1\ncount 1\nrequest 100\nshort", 4),
               std::invalid_argument);
  // Inner blob not '\n'-terminated (its last byte eaten by the declared
  // length of a lying neighbour would desynchronize every later item).
  EXPECT_THROW((void)parse_batch_solve_request(
                   "sapd-batch v1\ncount 2\nrequest 1\nXrequest 1\nY", 4),
               std::invalid_argument);
  // Negative / non-numeric / zero counts.
  EXPECT_THROW(
      (void)parse_batch_solve_request("sapd-batch v1\ncount -1\n", 4),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_batch_solve_request("sapd-batch v1\ncount soon\n", 4),
      std::invalid_argument);
  EXPECT_THROW((void)parse_batch_solve_request("sapd-batch v1\ncount 0\n", 4),
               std::invalid_argument);
  // Wrong magic line; trailing garbage after the last item.
  EXPECT_THROW((void)parse_batch_solve_request("sapd-batch v2\ncount 1\n", 4),
               std::invalid_argument);
  EXPECT_THROW((void)parse_batch_solve_request(
                   "sapd-batch v1\ncount 1\nrequest 1\nX\ngarbage", 4),
               std::invalid_argument);
  // Negative declared item size.
  EXPECT_THROW((void)parse_batch_solve_request(
                   "sapd-batch v1\ncount 1\nrequest -5\n", 4),
               std::invalid_argument);
  // Response-side: unknown slot tag.
  EXPECT_THROW((void)parse_batch_solve_response(
                   "sapd-batch-result v1\ncount 1\nmaybe 1\nX\n", 4),
               std::invalid_argument);
}

TEST(ProtocolTest, RoundKindsRoundTripAndUnknownKindsRejected) {
  for (const auto& [kind, name] :
       {std::pair{SolveRequest::Kind::kRoundUfp, "round-ufp"},
        std::pair{SolveRequest::Kind::kRoundSap, "round-sap"}}) {
    SolveRequest request;
    request.kind = kind;
    request.algo = "exact";
    request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 0\n";
    const std::string payload = encode_solve_request(request);
    EXPECT_NE(payload.find(std::string("\nkind ") + name + "\n"),
              std::string::npos)
        << payload;
    EXPECT_EQ(parse_solve_request(payload).kind, kind);
  }
  // An old server receiving a round kind rejects it as a *parse* error —
  // BAD_REQUEST on one request, connection untouched — which is exactly
  // the version-negotiation contract; same for any unknown kind today.
  SolveRequest probe;
  probe.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 0\n";
  std::string payload = encode_solve_request(probe);
  const std::size_t at = payload.find("\nkind path\n");
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, 11, "\nkind hyper\n");
  EXPECT_THROW((void)parse_solve_request(payload), std::invalid_argument);
}

TEST(ProtocolTest, RoundsResponseLineRoundTripsAndStaysOptional) {
  SolveResponse response;
  response.weight = 12;
  response.placed = 5;
  response.total_tasks = 5;
  response.is_round = true;
  response.rounds = 3;
  response.telemetry_json = "{}";
  response.solution_text = "round-solution v1\nkind round-ufp\nrounds 3\n"
                           "round 0\nround 0\nround 0\n";
  const std::string payload = encode_solve_response(response);
  EXPECT_NE(payload.find("\nrounds 3\n"), std::string::npos) << payload;
  const SolveResponse back = parse_solve_response(payload);
  EXPECT_TRUE(back.is_round);
  EXPECT_EQ(back.rounds, 3u);
  EXPECT_EQ(back.solution_text, response.solution_text);

  // Single-round responses (and old servers) never emit the line.
  response.is_round = false;
  response.rounds = 0;
  response.solution_text = "sap-solution v1\nplacements 0\n";
  const std::string plain = encode_solve_response(response);
  EXPECT_EQ(plain.find("\nrounds "), std::string::npos);
  const SolveResponse plain_back = parse_solve_response(plain);
  EXPECT_FALSE(plain_back.is_round);
  EXPECT_EQ(plain_back.rounds, 0u);
}

}  // namespace
}  // namespace sap::service
