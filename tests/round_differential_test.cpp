// Exhaustive tiny-instance differential sweep for the round family (no
// random sampling): systematically enumerated instances are pushed through
// the approximation pipelines, independently verified, and compared against
// the branch-and-bound oracle.
//
//   uniform capacity:   Round-UFP rounds <= 3 * OPT (the proven factor);
//                       Round-SAP with demands drawn from a single
//                       power-of-two class: rounds <= 13 * OPT.
//   general capacities: validity only, plus the sandwich
//                       lower_bound <= OPT <= approx on every instance.
//
// Oracle optimality is asserted (not assumed) at these sizes, so a budget
// regression that silently weakens the oracle fails here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/round/verify.hpp"

namespace sap::round {
namespace {

constexpr std::size_t kMaxTasks = 5;

/// Every window of w <= kMaxTasks consecutive pool tasks, for every w
/// (linear in the pool, covers each task in many neighbourhoods).
template <typename Visit>
void for_each_window(const std::vector<Task>& pool, const Visit& visit) {
  for (std::size_t w = 1; w <= std::min(kMaxTasks, pool.size()); ++w) {
    for (std::size_t start = 0; start + w <= pool.size(); ++start) {
      visit(std::vector<Task>(
          pool.begin() + static_cast<std::ptrdiff_t>(start),
          pool.begin() + static_cast<std::ptrdiff_t>(start + w)));
    }
  }
}

/// Oracle count with optimality asserted; instances here are small enough
/// that the default budgets always prove.
Value proven_opt(const PathInstance& inst, RoundKind kind) {
  const RoundExactResult r = solve_round_exact(inst, kind);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(verify_round_assignment(inst, r.assignment));
  return r.rounds;
}

void check_instance(const PathInstance& inst, RoundKind kind,
                    Value factor_num) {
  const RoundAssignment approx = kind == RoundKind::kUfp
                                     ? solve_round_ufp_approx(inst)
                                     : solve_round_sap_approx(inst);
  ASSERT_TRUE(verify_round_assignment(inst, approx))
      << verify_round_assignment(inst, approx).reason;
  const Value opt = proven_opt(inst, kind);
  const Value got = static_cast<Value>(approx.num_rounds());
  EXPECT_GE(got, opt);
  EXPECT_GE(opt, round_lower_bound(inst));
  if (factor_num > 0) {
    EXPECT_LE(got, factor_num * opt)
        << "rounds " << got << " vs optimum " << opt << " exceeds the "
        << factor_num << "x factor";
  }
}

TEST(RoundDifferentialTest, UniformUfpWithinThreeTimesOptimum) {
  // Uniform capacity implies NBA for every admissible task, so the 3x
  // classify-and-pack factor applies to every enumerated instance.
  for (const Value cap : {2, 3, 4, 6}) {
    for (const std::size_t edges : {1u, 2u, 3u}) {
      std::vector<Task> pool;
      const int m = static_cast<int>(edges);
      for (int first = 0; first < m; ++first) {
        for (int last = first; last < m; ++last) {
          for (const Value d : {Value{1}, (cap + 1) / 2, cap}) {
            pool.push_back({static_cast<EdgeId>(first),
                            static_cast<EdgeId>(last), d, 1});
          }
        }
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      const std::vector<Value> caps(edges, cap);
      for_each_window(pool, [&](std::vector<Task> tasks) {
        check_instance(PathInstance(caps, std::move(tasks)),
                       RoundKind::kUfp, /*factor_num=*/3);
      });
    }
  }
}

TEST(RoundDifferentialTest, UniformSingleClassSapWithinThirteenTimes) {
  // One power-of-two demand class per sweep: d in (2^{i-1}, 2^i]. The
  // combined profiled-first-fit bound asserted here is 13x.
  struct Sweep {
    Value cap;
    std::vector<Value> demands;  // one class
  };
  const std::vector<Sweep> sweeps = {
      {4, {1}}, {4, {2}}, {8, {2}}, {8, {3, 4}}, {6, {2}},
  };
  for (const Sweep& sweep : sweeps) {
    for (const std::size_t edges : {1u, 2u, 3u}) {
      std::vector<Task> pool;
      const int m = static_cast<int>(edges);
      for (int first = 0; first < m; ++first) {
        for (int last = first; last < m; ++last) {
          for (const Value d : sweep.demands) {
            pool.push_back({static_cast<EdgeId>(first),
                            static_cast<EdgeId>(last), d, 1});
            // Duplicate so rounds actually fill up.
            pool.push_back({static_cast<EdgeId>(first),
                            static_cast<EdgeId>(last), d, 1});
          }
        }
      }
      const std::vector<Value> caps(edges, sweep.cap);
      for_each_window(pool, [&](std::vector<Task> tasks) {
        check_instance(PathInstance(caps, std::move(tasks)),
                       RoundKind::kSap, /*factor_num=*/13);
      });
    }
  }
}

TEST(RoundDifferentialTest, GeneralCapacitiesValidAndSandwiched) {
  // Non-uniform capacities: no constant factor is claimed (Round-UFP
  // without NBA has super-constant hardness) — assert validity and the
  // LB <= OPT <= approx sandwich for both variants.
  const std::vector<std::vector<Value>> patterns = {
      {1, 4}, {4, 1}, {2, 4, 2}, {4, 2, 4}, {1, 2, 3}, {3, 1, 3},
  };
  for (const std::vector<Value>& caps : patterns) {
    std::vector<Task> pool;
    const int m = static_cast<int>(caps.size());
    for (int first = 0; first < m; ++first) {
      for (int last = first; last < m; ++last) {
        Value b = caps[static_cast<std::size_t>(first)];
        for (int e = first + 1; e <= last; ++e) {
          b = std::min(b, caps[static_cast<std::size_t>(e)]);
        }
        for (const Value d : {Value{1}, (b + 1) / 2, b}) {
          pool.push_back({static_cast<EdgeId>(first),
                          static_cast<EdgeId>(last), d, 1});
        }
      }
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    for_each_window(pool, [&](std::vector<Task> tasks) {
      std::vector<Task> copy = tasks;
      check_instance(PathInstance(caps, std::move(tasks)), RoundKind::kUfp,
                     /*factor_num=*/0);
      check_instance(PathInstance(caps, std::move(copy)), RoundKind::kSap,
                     /*factor_num=*/0);
    });
  }
}

}  // namespace
}  // namespace sap::round
