// Loopback integration tests for the sapd service: concurrent clients get
// byte-identical answers to in-process solves, hostile bytes are rejected
// with typed errors, a full admission queue backpressures with OVERLOADED,
// and shutdown drains in-flight work. Every server binds port 0 (ephemeral),
// so the suite is parallel-safe.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <numeric>
#include <semaphore>
#include <sstream>
#include <thread>
#include <vector>

#include "src/cert/check.hpp"
#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/io/instance_io.hpp"
#include "src/model/verify.hpp"
#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/round/verify.hpp"
#include "src/service/client.hpp"
#include "src/service/frame.hpp"
#include "src/service/server.hpp"

namespace sap::service {
namespace {

std::string ring_to_string(const RingInstance& inst) {
  std::ostringstream os;
  write_ring_instance(os, inst);
  return os.str();
}

/// In-process reference for a path request, matching the server exactly.
std::string reference_path_solution(const std::string& instance_text,
                                    double eps, std::uint64_t seed) {
  std::istringstream is(instance_text);
  const PathInstance inst = read_path_instance(is);
  SolverParams params;
  params.eps = eps;
  params.seed = seed;
  std::ostringstream os;
  write_sap_solution(os, solve_sap(inst, params));
  return os.str();
}

std::string reference_ring_solution(const std::string& instance_text,
                                    double eps, std::uint64_t seed) {
  std::istringstream is(instance_text);
  const RingInstance inst = read_ring_instance(is);
  RingSolverParams params;
  params.path.eps = eps;
  params.path.seed = seed;
  std::ostringstream os;
  write_ring_solution(os, solve_ring_sap(inst, params));
  return os.str();
}

/// Raw TCP connection for sending hostile bytes below the Client layer.
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void spin_until(const std::function<bool()>& predicate) {
  for (int i = 0; i < 10'000 && !predicate(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(predicate());
}

TEST(ServiceTest, ConcurrentClientsGetByteIdenticalVerifiedAnswers) {
  Server server(ServerOptions{});
  server.start();

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port(), &failures] {
      Client client;
      client.connect("127.0.0.1", port);
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        const std::uint64_t seed = 1000 * c + r;
        const bool ring = (c + r) % 3 == 0;
        Rng rng(seed);
        SolveRequest request;
        request.eps = 0.5;
        request.seed = seed;
        if (ring) {
          RingGenOptions gen;
          gen.num_edges = 8;
          gen.num_tasks = 10;
          request.kind = SolveRequest::Kind::kRing;
          request.instance_text =
              ring_to_string(generate_ring_instance(gen, rng));
        } else {
          PathGenOptions gen;
          gen.num_edges = 10;
          gen.num_tasks = 14;
          request.kind = SolveRequest::Kind::kPath;
          request.instance_text = to_string(generate_path_instance(gen, rng));
        }

        const Client::SolveOutcome outcome = client.solve(request);
        if (!outcome.ok) {
          ++failures;
          ADD_FAILURE() << "solve rejected: " << outcome.error_message;
          continue;
        }

        // Byte-identical to the same solve run in this process.
        const std::string expected =
            ring ? reference_ring_solution(request.instance_text, request.eps,
                                           request.seed)
                 : reference_path_solution(request.instance_text, request.eps,
                                           request.seed);
        if (outcome.response.solution_text != expected) {
          ++failures;
          ADD_FAILURE() << "served solution differs from in-process solve "
                           "(client "
                        << c << ", request " << r << ")";
        }

        // Independently verified feasible.
        std::istringstream solution_is(outcome.response.solution_text);
        if (ring) {
          std::istringstream instance_is(request.instance_text);
          const RingInstance inst = read_ring_instance(instance_is);
          const RingSapSolution sol = read_ring_solution(solution_is);
          const VerifyResult check = verify_ring_sap(inst, sol);
          if (!check) {
            ++failures;
            ADD_FAILURE() << "infeasible ring solution: " << check.reason;
          }
          if (outcome.response.weight != inst.solution_weight(sol)) ++failures;
        } else {
          std::istringstream instance_is(request.instance_text);
          const PathInstance inst = read_path_instance(instance_is);
          const SapSolution sol = read_sap_solution(solution_is);
          const VerifyResult check = verify_sap(inst, sol);
          if (!check) {
            ++failures;
            ADD_FAILURE() << "infeasible path solution: " << check.reason;
          }
          if (outcome.response.weight != sol.weight(inst)) ++failures;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.requests_bad, 0u);
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.latency_samples, kClients * kRequestsPerClient);
  server.stop();
}

TEST(ServiceTest, SolverSelectionMatchesInProcessBackends) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Rng rng(99);
  PathGenOptions gen;
  gen.num_edges = 8;
  gen.num_tasks = 12;
  const PathInstance inst = generate_path_instance(gen, rng);
  SolverParams params;
  params.eps = 0.5;
  params.seed = 7;

  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  const std::pair<const char*, SapSolution> expectations[] = {
      {"full", solve_sap(inst, params)},
      {"small", solve_small_tasks(inst, ids, params)},
      {"medium", solve_medium_tasks(inst, ids, params)},
      {"large", solve_large_tasks(inst, ids, params)},
  };
  for (const auto& [algo, expected_sol] : expectations) {
    SolveRequest request;
    request.algo = algo;
    request.eps = 0.5;
    request.seed = 7;
    request.instance_text = to_string(inst);
    const Client::SolveOutcome outcome = client.solve(request);
    ASSERT_TRUE(outcome.ok) << algo << ": " << outcome.error_message;
    std::ostringstream expected_os;
    write_sap_solution(expected_os, expected_sol);
    EXPECT_EQ(outcome.response.solution_text, expected_os.str()) << algo;
  }
  server.stop();
}

TEST(ServiceTest, CertifiedSolveReturnsIndependentlyCheckableCertificate) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // Tiny instance: the exact_dp rung fires and stays inside the verifier's
  // recheck budgets, so the client-side check is a full re-proof.
  Rng rng(5);
  PathGenOptions gen;
  gen.num_edges = 6;
  gen.num_tasks = 8;
  gen.min_capacity = 4;
  gen.max_capacity = 12;
  const PathInstance inst = generate_path_instance(gen, rng);

  SolveRequest request;
  request.want_certificate = true;
  request.instance_text = to_string(inst);
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  ASSERT_FALSE(outcome.response.certificate_text.empty());

  std::istringstream cert_is(outcome.response.certificate_text);
  const cert::Certificate certificate = read_certificate(cert_is);
  std::istringstream sol_is(outcome.response.solution_text);
  const SapSolution sol = read_sap_solution(sol_is);
  const cert::CheckResult check =
      cert::check_certificate(inst, sol, certificate);
  EXPECT_TRUE(check.valid) << check.reason;
  EXPECT_EQ(certificate.solution_weight, outcome.response.weight);
  // Certification ran inside the request's telemetry session.
  EXPECT_NE(outcome.response.telemetry_json.find("cert.produced"),
            std::string::npos);

  // The same request without the opt-in gets the pre-certification
  // envelope: no certificate section at all.
  request.want_certificate = false;
  const Client::SolveOutcome plain = client.solve(request);
  ASSERT_TRUE(plain.ok) << plain.error_message;
  EXPECT_TRUE(plain.response.certificate_text.empty());
  EXPECT_EQ(plain.response.solution_text, outcome.response.solution_text);
  server.stop();
}

TEST(ServiceTest, CertifiedRingSolveReturnsCheckableCertificate) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Rng rng(6);
  RingGenOptions gen;
  gen.num_edges = 6;
  gen.num_tasks = 8;
  gen.min_capacity = 4;
  gen.max_capacity = 12;
  const RingInstance ring = generate_ring_instance(gen, rng);

  SolveRequest request;
  request.kind = SolveRequest::Kind::kRing;
  request.want_certificate = true;
  request.instance_text = ring_to_string(ring);
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  ASSERT_FALSE(outcome.response.certificate_text.empty());

  std::istringstream cert_is(outcome.response.certificate_text);
  const cert::Certificate certificate = read_certificate(cert_is);
  EXPECT_EQ(certificate.kind, cert::Certificate::Kind::kRing);
  std::istringstream sol_is(outcome.response.solution_text);
  const RingSapSolution sol = read_ring_solution(sol_is);
  const cert::CheckResult check =
      cert::check_certificate(ring, sol, certificate);
  EXPECT_TRUE(check.valid) << check.reason;
  server.stop();
}

TEST(ServiceTest, MalformedEnvelopeAndInstanceRejectedTyped) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // Unparseable instance text: typed BAD_REQUEST with the reader's
  // line-numbered diagnostic, and the connection survives.
  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 2\ncapacities 4 nope\n";
  Client::SolveOutcome outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kBadRequest);
  EXPECT_NE(outcome.error_message.find("line 3"), std::string::npos)
      << outcome.error_message;

  // Unknown algo: BAD_REQUEST, connection still usable afterwards.
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 0\n";
  request.algo = "quantum";
  outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kBadRequest);

  request.algo = "full";
  outcome = client.solve(request);
  EXPECT_TRUE(outcome.ok);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_bad, 2u);
  EXPECT_EQ(stats.requests_ok, 1u);
  server.stop();
}

TEST(ServiceTest, InstanceOverServerReadLimitsRejected) {
  ServerOptions options;
  options.read_limits.max_tasks = 4;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.instance_text =
      "sap-path v1\nedges 1\ncapacities 9\ntasks 5\n"
      "0 0 1 1\n0 0 1 1\n0 0 1 1\n0 0 1 1\n0 0 1 1\n";
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kBadRequest);
  EXPECT_NE(outcome.error_message.find("exceeds limit"), std::string::npos)
      << outcome.error_message;
  server.stop();
}

TEST(ServiceTest, GarbageMagicGetsErrorThenClose) {
  Server server(ServerOptions{});
  server.start();

  const int fd = connect_raw(server.port());
  // Exactly one header's worth of garbage: nothing is left unread when the
  // server closes, so the client sees a clean FIN, not an RST.
  const unsigned char garbage[kFrameHeaderBytes] = {'n', 'o', 'p', 'e', 1, 2,
                                                    3,   4,   5,   6,   7, 8};
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  Frame frame;
  ASSERT_EQ(read_frame(fd, &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kErrorResponse));
  const ErrorResponse error = parse_error_response(frame.payload);
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  // Server closes the poisoned stream after the error frame.
  EXPECT_EQ(read_frame(fd, &frame), ReadStatus::kEof);
  ::close(fd);
  server.stop();
}

TEST(ServiceTest, OversizedFrameGetsErrorThenClose) {
  ServerOptions options;
  options.max_frame_payload = 1024;
  Server server(options);
  server.start();

  const int fd = connect_raw(server.port());
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(header, FrameType::kSolveRequest, 1 << 30);  // 1 GiB
  ASSERT_EQ(::write(fd, header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  ASSERT_EQ(read_frame(fd, &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kErrorResponse));
  const ErrorResponse error = parse_error_response(frame.payload);
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  EXPECT_NE(error.message.find("exceeds server limit"), std::string::npos);
  EXPECT_EQ(read_frame(fd, &frame), ReadStatus::kEof);
  ::close(fd);
  server.stop();
}

TEST(ServiceTest, UnknownFrameTypeKeepsConnectionUsable) {
  Server server(ServerOptions{});
  server.start();

  const int fd = connect_raw(server.port());
  ASSERT_TRUE(write_frame(fd, static_cast<FrameType>(999), "???"));
  Frame frame;
  ASSERT_EQ(read_frame(fd, &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kErrorResponse));
  // Frame boundary intact: a stats request on the same connection works.
  ASSERT_TRUE(write_frame(fd, FrameType::kStatsRequest, ""));
  ASSERT_EQ(read_frame(fd, &frame), ReadStatus::kOk);
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(FrameType::kStatsResponse));
  EXPECT_NE(frame.payload.find("\"queue_depth\""), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(ServiceTest, FullAdmissionQueueRejectsWithOverloadedImmediately) {
  std::counting_semaphore<64> gate(0);
  ServerOptions options;
  options.solver_threads = 1;
  options.max_queue = 1;
  options.fault_injector = [&gate](FaultPoint point) {
    if (point == FaultPoint::kPreSolve) gate.acquire();
  };
  Server server(options);
  server.start();

  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";

  // A occupies the single worker (blocked in the hook), B fills the queue.
  Client::SolveOutcome outcome_a, outcome_b;
  std::thread a([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    outcome_a = client.solve(request);
  });
  spin_until([&] { return server.stats_snapshot().active_solves == 1; });
  std::thread b([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    outcome_b = client.solve(request);
  });
  spin_until([&] { return server.stats_snapshot().queue_depth == 1; });

  // C must be rejected immediately — typed OVERLOADED, not a hang or drop.
  Client overflow_client;
  overflow_client.connect("127.0.0.1", server.port());
  const Client::SolveOutcome outcome_c = overflow_client.solve(request);
  ASSERT_FALSE(outcome_c.ok);
  EXPECT_EQ(outcome_c.error_code, ErrorCode::kOverloaded);

  // Releasing the worker drains A then B normally.
  gate.release(2);
  a.join();
  b.join();
  EXPECT_TRUE(outcome_a.ok) << outcome_a.error_message;
  EXPECT_TRUE(outcome_b.ok) << outcome_b.error_message;

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 2u);
  EXPECT_EQ(stats.requests_overloaded, 1u);
  server.stop();
}

TEST(ServiceTest, StopDrainsInFlightSolvesBeforeReturning) {
  std::counting_semaphore<64> gate(0);
  ServerOptions options;
  options.solver_threads = 1;
  options.fault_injector = [&gate](FaultPoint point) {
    if (point == FaultPoint::kPreSolve) gate.acquire();
  };
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";
  Client::SolveOutcome outcome;
  std::thread in_flight([&] {
    Client client;
    client.connect("127.0.0.1", port);
    outcome = client.solve(request);
  });
  spin_until([&] { return server.stats_snapshot().active_solves == 1; });

  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server.stop();
    stopped = true;
  });
  // stop() must wait for the admitted solve, which is still gated.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(stopped.load());

  gate.release(1);
  stopper.join();
  in_flight.join();
  EXPECT_TRUE(stopped.load());
  // The drained solve flushed its (successful) response before shutdown.
  EXPECT_TRUE(outcome.ok) << outcome.error_message;

  // The listener is really gone.
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", port), std::runtime_error);
}

TEST(ServiceTest, StatsReportsOutcomeCountsAndPercentiles) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";
  ASSERT_TRUE(client.solve(request).ok);
  request.instance_text = "not an instance";
  ASSERT_FALSE(client.solve(request).ok);

  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"ok\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bad_request\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // The snapshot API agrees with the wire report.
  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.requests_bad, 1u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.latency_samples, 1u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  server.stop();
}

/// An instance the exponential exact oracle cannot finish in 1 ms: dense,
/// same-capacity, long-span tasks keep the profile-DP frontier wide.
std::string adversarial_exact_instance() {
  PathGenOptions gen;
  gen.num_edges = 14;
  gen.num_tasks = 48;
  gen.min_capacity = 64;
  gen.max_capacity = 64;
  gen.mean_span_fraction = 0.8;
  Rng rng(21);
  return to_string(generate_path_instance(gen, rng));
}

TEST(ServiceTest, ExpiredDeadlineDegradesToVerifiedApproximation) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.algo = "exact";
  request.deadline_ms = 1;
  request.instance_text = adversarial_exact_instance();
  const Client::SolveOutcome outcome = client.solve(request);

  // The budget is far too small for the oracle, but the response is still a
  // success: the degraded approximation, marked as such.
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_TRUE(outcome.response.degraded);
  EXPECT_NE(outcome.response.skipped.find("solve.exact"), std::string::npos)
      << outcome.response.skipped;

  // The fallback answer is a real feasible solution.
  std::istringstream inst_is(request.instance_text);
  const PathInstance inst = read_path_instance(inst_is);
  std::istringstream sol_is(outcome.response.solution_text);
  const SapSolution sol = read_sap_solution(sol_is);
  const VerifyResult verdict = verify_sap(inst, sol);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
  EXPECT_EQ(outcome.response.weight, sol.weight(inst));

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.requests_degraded, 1u);
  EXPECT_EQ(stats.requests_deadline_exceeded, 0u);
  server.stop();
}

TEST(ServiceTest, ExpiredDeadlineRejectsTypedWhenDegradationDisabled) {
  ServerOptions options;
  options.degrade_on_deadline = false;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.algo = "exact";
  request.deadline_ms = 1;
  request.instance_text = adversarial_exact_instance();
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(outcome.local_timeout);  // a server rejection, not a client one

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_deadline_exceeded, 1u);
  EXPECT_EQ(stats.requests_ok, 0u);

  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"deadline_exceeded\": 1"), std::string::npos) << json;
  server.stop();
}

TEST(ServiceTest, ServerDefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServerOptions options;
  options.default_deadline_ms = 1;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.algo = "exact";  // no request.deadline_ms: the server default bites
  request.instance_text = adversarial_exact_instance();
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_TRUE(outcome.response.degraded);
  server.stop();
}

TEST(ServiceTest, GenerousDeadlineChangesNothing) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.eps = 0.5;
  request.seed = 3;
  request.instance_text = "sap-path v1\nedges 2\ncapacities 6 6\ntasks 3\n"
                          "0 1 2 5\n0 0 3 4\n1 1 2 6\n";
  const Client::SolveOutcome plain = client.solve(request);
  request.deadline_ms = 60'000;
  const Client::SolveOutcome budgeted = client.solve(request);
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(budgeted.ok);
  // Determinism contract: a non-binding deadline is invisible in the result.
  EXPECT_FALSE(budgeted.response.degraded);
  EXPECT_EQ(budgeted.response.solution_text, plain.response.solution_text);
  EXPECT_EQ(budgeted.response.weight, plain.response.weight);
  server.stop();
}

TEST(ServiceTest, ClientReadTimeoutOnNeverReplyPeerIsTypedDeadline) {
  // An accept-only listener: the connection opens, then nothing ever comes
  // back. Without SO_RCVTIMEO the client would block forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  ClientOptions options;
  options.read_timeout_ms = 100;
  Client client(options);
  client.connect("127.0.0.1", ntohs(addr.sin_port));
  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";
  const Client::SolveOutcome outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(outcome.local_timeout);
  // The connection is poisoned: a late reply must not desync a future call.
  EXPECT_FALSE(client.connected());
  ::close(listener);
}

TEST(ServiceTest, RetryBackoffScheduleIsDeterministicUnderFixedSeed) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 50;
  policy.growth = 2.0;
  policy.max_backoff_ms = 400;
  policy.seed = 42;

  Rng a(policy.seed);
  Rng b(policy.seed);
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    const std::int64_t first = Client::backoff_ms(policy, attempt, a);
    const std::int64_t second = Client::backoff_ms(policy, attempt, b);
    EXPECT_EQ(first, second) << "attempt " << attempt;
    // Equal jitter keeps every draw inside [base/2, base).
    const std::int64_t base = std::min<std::int64_t>(
        policy.max_backoff_ms, 50 * (std::int64_t{1} << (attempt - 1)));
    EXPECT_GE(first, base / 2);
    EXPECT_LT(first, base);
  }
}

TEST(ServiceTest, SolveWithRetryRecoversFromOverload) {
  std::counting_semaphore<64> gate(0);
  ServerOptions server_options;
  server_options.solver_threads = 1;
  server_options.max_queue = 1;
  server_options.fault_injector = [&gate](FaultPoint point) {
    if (point == FaultPoint::kPreSolve) gate.acquire();
  };
  Server server(server_options);
  server.start();

  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";

  // A occupies the worker, B fills the queue; C's first attempt must be
  // rejected OVERLOADED, then succeed on a retry once the gate opens.
  Client::SolveOutcome outcome_a, outcome_b;
  std::thread a([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    outcome_a = client.solve(request);
  });
  spin_until([&] { return server.stats_snapshot().active_solves == 1; });
  std::thread b([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    outcome_b = client.solve(request);
  });
  spin_until([&] { return server.stats_snapshot().queue_depth == 1; });

  std::thread opener([&] {
    spin_until([&] {
      return server.stats_snapshot().requests_overloaded >= 1;
    });
    gate.release(64);
  });

  ClientOptions retry_options;
  retry_options.retry.max_attempts = 8;
  retry_options.retry.initial_backoff_ms = 20;
  retry_options.retry.seed = 7;
  Client retry_client(retry_options);
  retry_client.connect("127.0.0.1", server.port());
  const Client::SolveOutcome outcome = retry_client.solve_with_retry(request);
  opener.join();
  a.join();
  b.join();
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_GT(outcome.attempts, 1);
  EXPECT_TRUE(outcome_a.ok);
  EXPECT_TRUE(outcome_b.ok);
  server.stop();
}

TEST(ServiceTest, SolveWithRetryGivesUpAfterMaxAttemptsOnDeadServer) {
  ServerOptions options;
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  ClientOptions retry_options;
  retry_options.retry.max_attempts = 3;
  retry_options.retry.initial_backoff_ms = 1;
  Client client(retry_options);
  client.connect("127.0.0.1", port);
  server.stop();  // every retry now fails at reconnect or mid-round-trip

  SolveRequest request;
  request.instance_text = "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n"
                          "0 0 2 5\n";
  try {
    (void)client.solve_with_retry(request);
    FAIL() << "expected a transport failure";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("after 3 attempts"),
              std::string::npos)
        << error.what();
  }
}

TEST(ServiceBatchTest, BatchFrameSolvesItemsIndividuallyAndPreservesOrder) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest path_request;
  path_request.instance_text =
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
  SolveRequest bad_request;
  bad_request.instance_text = "sap-path v1\nedges NOT_A_NUMBER\n";
  SolveRequest ring_request;
  ring_request.kind = SolveRequest::Kind::kRing;
  {
    RingGenOptions gen;
    gen.num_edges = 6;
    gen.num_tasks = 8;
    Rng rng(5);
    ring_request.instance_text = ring_to_string(generate_ring_instance(gen, rng));
  }

  const std::vector<Client::SolveOutcome> outcomes =
      client.solve_batch({path_request, bad_request, ring_request});
  ASSERT_EQ(outcomes.size(), 3u);

  // Slot 0 and 2 match the equivalent sequential round trips; the bad item
  // rejects only its own slot.
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error_message;
  ASSERT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error_code, ErrorCode::kBadRequest);
  ASSERT_TRUE(outcomes[2].ok) << outcomes[2].error_message;

  const Client::SolveOutcome path_alone = client.solve(path_request);
  const Client::SolveOutcome ring_alone = client.solve(ring_request);
  ASSERT_TRUE(path_alone.ok);
  ASSERT_TRUE(ring_alone.ok);
  EXPECT_EQ(outcomes[0].response.solution_text,
            path_alone.response.solution_text);
  EXPECT_EQ(outcomes[0].response.weight, path_alone.response.weight);
  EXPECT_EQ(outcomes[2].response.solution_text,
            ring_alone.response.solution_text);
  EXPECT_EQ(outcomes[2].response.weight, ring_alone.response.weight);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.batch_requests, 1u);
  EXPECT_EQ(stats.requests_ok, 4u);  // 2 batch slots + 2 sequential
  EXPECT_EQ(stats.requests_bad, 1u);
  server.stop();
}

TEST(ServiceBatchTest, EmptyBatchShortCircuitsWithoutATransport) {
  // solve_batch({}) returns before touching the socket, so it works on a
  // client that was never connected to anything.
  Client client;
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.solve_batch({}).empty());
}

TEST(ServiceBatchTest, CanonicallyEqualBatchItemsCoalesceToOneSolve) {
  // Three textually different spellings of the same instance — comments,
  // extra spaces, CRLF endings — canonicalize to one digest, so a batch
  // containing all three costs one solve and replays the stored payload
  // byte-for-byte into every slot.
  ServerOptions options;
  options.cache_entries = 8;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest plain;
  plain.instance_text =
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
  SolveRequest commented = plain;
  commented.instance_text =
      "# same instance, different bytes\n"
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
  SolveRequest respaced = plain;
  respaced.instance_text =
      "sap-path v1\r\nedges  1\r\ncapacities 4\r\n\r\ntasks 1\r\n0 0 2 5\r\n";

  const std::vector<Client::SolveOutcome> outcomes =
      client.solve_batch({plain, commented, respaced});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const Client::SolveOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.error_message;
    EXPECT_EQ(outcome.response.solution_text,
              outcomes[0].response.solution_text);
    EXPECT_EQ(outcome.response.weight, outcomes[0].response.weight);
    EXPECT_EQ(outcome.response.wall_micros,
              outcomes[0].response.wall_micros);
  }

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_coalesced, 2u);
  EXPECT_EQ(stats.cache_entries, 1u);
  server.stop();
}

TEST(ServiceBatchTest, BatchOverItemLimitRejectedBeforeAnyInnerParse) {
  ServerOptions options;
  options.max_batch_items = 2;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.instance_text =
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
  const std::vector<Client::SolveOutcome> outcomes =
      client.solve_batch({request, request, request});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const Client::SolveOutcome& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error_code, ErrorCode::kBadRequest);
    EXPECT_NE(outcome.error_message.find("exceeds receiver limit"),
              std::string::npos)
        << outcome.error_message;
  }
  // The connection survives the rejection (frame boundary intact).
  const Client::SolveOutcome after = client.solve(request);
  EXPECT_TRUE(after.ok) << after.error_message;
  server.stop();
}

/// Extracts the `-- instance` section of a sap-golden v1 fixture.
std::string golden_instance_text(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string line, instance;
  bool in_instance = false;
  while (std::getline(in, line)) {
    if (line.rfind("--", 0) == 0) {
      in_instance = line == "-- instance";
      continue;
    }
    if (in_instance) {
      instance += line;
      instance += '\n';
    }
  }
  return instance;
}

TEST(ServiceCacheTest, CachedResponsesMatchFreshSolvesAcrossGoldenSuite) {
  // Differential: for every checked-in golden fixture, the answer served
  // from the cache must match both the first (fresh) serve and a
  // cache-disabled server's serve.
  ServerOptions cached_options;
  cached_options.cache_entries = 64;
  Server cached_server(cached_options);
  cached_server.start();
  Server plain_server(ServerOptions{});  // cache off
  plain_server.start();

  Client cached_client, plain_client;
  cached_client.connect("127.0.0.1", cached_server.port());
  plain_client.connect("127.0.0.1", plain_server.port());

  std::vector<std::string> fixtures;
  for (const auto& entry :
       std::filesystem::directory_iterator(SAPKIT_GOLDEN_DIR)) {
    fixtures.push_back(entry.path().string());
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_GE(fixtures.size(), 25u);

  std::size_t cases = 0;
  for (const std::string& path : fixtures) {
    SolveRequest request;
    request.instance_text = golden_instance_text(path);
    if (request.instance_text.rfind("sap-ring", 0) == 0) {
      request.kind = SolveRequest::Kind::kRing;
    } else if (request.instance_text.rfind("sap-path", 0) != 0) {
      continue;  // not an instance-bearing fixture
    }
    ++cases;

    const Client::SolveOutcome fresh = cached_client.solve(request);
    const Client::SolveOutcome cached = cached_client.solve(request);
    const Client::SolveOutcome plain = plain_client.solve(request);
    ASSERT_TRUE(fresh.ok) << path << ": " << fresh.error_message;
    ASSERT_TRUE(cached.ok) << path << ": " << cached.error_message;
    ASSERT_TRUE(plain.ok) << path << ": " << plain.error_message;

    // The cached serve replays the stored payload byte-for-byte, so even
    // wall_micros matches the fresh serve it was stored from.
    EXPECT_EQ(cached.response.solution_text, fresh.response.solution_text)
        << path;
    EXPECT_EQ(cached.response.weight, fresh.response.weight) << path;
    EXPECT_EQ(cached.response.wall_micros, fresh.response.wall_micros)
        << path;
    EXPECT_FALSE(cached.response.degraded) << path;
    // And a server with no cache at all computes the same answer.
    EXPECT_EQ(cached.response.solution_text, plain.response.solution_text)
        << path;
    EXPECT_EQ(cached.response.weight, plain.response.weight) << path;
  }
  ASSERT_GE(cases, 25u);

  // Some fixtures pin the same instance under different solver configs, so
  // distinct cache keys can number fewer than fixtures: every serve is
  // accounted a hit or a miss, every fixture's second serve hit, and each
  // miss published exactly one entry.
  const ServerStats stats = cached_server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 2 * cases);
  EXPECT_GE(stats.cache_hits, cases);
  EXPECT_EQ(stats.cache_misses, stats.cache_entries);
  EXPECT_LE(stats.cache_entries, 64u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  const ServerStats plain_stats = plain_server.stats_snapshot();
  EXPECT_EQ(plain_stats.cache_hits, 0u);
  EXPECT_EQ(plain_stats.cache_misses, 0u);
  cached_server.stop();
  plain_server.stop();
}

TEST(ServiceCacheTest, ConcurrentIdenticalRequestsCoalesceIntoOneSolve) {
  std::counting_semaphore<64> gate(0);
  ServerOptions options;
  options.solver_threads = 1;
  options.cache_entries = 8;
  options.fault_injector = [&gate](FaultPoint point) {
    if (point == FaultPoint::kPreSolve) gate.acquire();
  };
  Server server(options);
  server.start();

  SolveRequest request;
  request.instance_text =
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";

  // The first request becomes the owner and blocks in the hook; the other
  // two coalesce behind it without consuming queue slots or workers.
  constexpr std::size_t kClients = 3;
  Client::SolveOutcome outcomes[kClients];
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      client.connect("127.0.0.1", server.port());
      outcomes[c] = client.solve(request);
    });
    if (c == 0) {
      spin_until([&] { return server.stats_snapshot().active_solves == 1; });
    }
  }
  spin_until([&] { return server.stats_snapshot().cache_coalesced == 2; });
  EXPECT_EQ(server.stats_snapshot().queue_depth, 0u);

  gate.release(1);  // only the owner ever reaches the hook
  for (auto& thread : clients) thread.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_TRUE(outcomes[c].ok) << outcomes[c].error_message;
    // Byte-identical fan-out: every waiter got the owner's stored payload.
    EXPECT_EQ(outcomes[c].response.solution_text,
              outcomes[0].response.solution_text);
    EXPECT_EQ(outcomes[c].response.wall_micros,
              outcomes[0].response.wall_micros);
  }
  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_coalesced, 2u);
  EXPECT_EQ(stats.cache_entries, 1u);
  server.stop();
}

TEST(ServiceCacheTest, DegradedResponseIsNeverCached) {
  ServerOptions options;
  options.cache_entries = 8;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.algo = "exact";
  request.deadline_ms = 1;
  request.instance_text = adversarial_exact_instance();

  const Client::SolveOutcome first = client.solve(request);
  ASSERT_TRUE(first.ok) << first.error_message;
  EXPECT_TRUE(first.response.degraded);

  // A degraded result reflects the request's budget, not the instance: it
  // must not have been published, so the identical request solves again
  // (and degrades again) instead of replaying the partial answer.
  const ServerStats between = server.stats_snapshot();
  EXPECT_EQ(between.cache_entries, 0u);
  EXPECT_EQ(between.cache_hits, 0u);

  const Client::SolveOutcome second = client.solve(request);
  ASSERT_TRUE(second.ok) << second.error_message;
  EXPECT_TRUE(second.response.degraded);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.requests_degraded, 2u);
  server.stop();
}

/// In-process reference for a round request, matching the server exactly.
std::string reference_round_solution(const std::string& instance_text,
                                     round::RoundKind kind,
                                     const std::string& algo) {
  std::istringstream is(instance_text);
  const PathInstance inst = read_path_instance(is);
  round::RoundAssignment assignment;
  if (algo == "exact") {
    assignment = round::solve_round_exact(inst, kind).assignment;
  } else {
    assignment = kind == round::RoundKind::kUfp
                     ? round::solve_round_ufp_approx(inst)
                     : round::solve_round_sap_approx(inst);
  }
  std::ostringstream os;
  write_round_assignment(os, assignment);
  return os.str();
}

TEST(ServiceRoundTest, RoundSolveMatchesInProcessPipelinesOnBothKinds) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  Rng rng(17);
  PathGenOptions gen;
  gen.num_edges = 6;
  gen.num_tasks = 10;
  gen.min_capacity = 4;
  gen.max_capacity = 12;
  const PathInstance inst = generate_path_instance(gen, rng);

  const std::pair<SolveRequest::Kind, round::RoundKind> kinds[] = {
      {SolveRequest::Kind::kRoundUfp, round::RoundKind::kUfp},
      {SolveRequest::Kind::kRoundSap, round::RoundKind::kSap},
  };
  for (const auto& [wire_kind, model_kind] : kinds) {
    for (const std::string algo : {"full", "exact"}) {
      SolveRequest request;
      request.kind = wire_kind;
      request.algo = algo;
      request.instance_text = to_string(inst);
      const Client::SolveOutcome outcome = client.solve(request);
      ASSERT_TRUE(outcome.ok) << algo << ": " << outcome.error_message;

      // Byte-identical to the same pipeline run in this process.
      EXPECT_EQ(outcome.response.solution_text,
                reference_round_solution(request.instance_text, model_kind,
                                         algo))
          << algo;
      EXPECT_TRUE(outcome.response.is_round);
      EXPECT_FALSE(outcome.response.degraded);

      // The packing is independently verifiable and places every task.
      std::istringstream sol_is(outcome.response.solution_text);
      const round::RoundAssignment assignment = read_round_assignment(sol_is);
      EXPECT_EQ(assignment.kind, model_kind);
      const VerifyResult check =
          round::verify_round_assignment(inst, assignment);
      EXPECT_TRUE(check) << algo << ": " << check.reason;
      EXPECT_EQ(outcome.response.rounds, assignment.num_rounds());
      EXPECT_GE(outcome.response.rounds, 1u);
      EXPECT_EQ(outcome.response.placed, inst.num_tasks());
      EXPECT_EQ(outcome.response.total_tasks, inst.num_tasks());
      EXPECT_EQ(outcome.response.weight, inst.total_weight());
    }
  }

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 4u);
  server.stop();
}

TEST(ServiceRoundTest, CachedRoundResponsesReplayByteIdenticalPerKindLane) {
  ServerOptions options;
  options.cache_entries = 8;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  // The same instance text under three kinds: path, round-ufp, round-sap.
  // Each kind hashes into its own digest lane, so these are three distinct
  // cache entries, and each second serve replays its own stored payload.
  Rng rng(23);
  PathGenOptions gen;
  gen.num_edges = 5;
  gen.num_tasks = 8;
  gen.min_capacity = 4;
  gen.max_capacity = 8;
  const std::string text = to_string(generate_path_instance(gen, rng));

  for (const SolveRequest::Kind kind :
       {SolveRequest::Kind::kPath, SolveRequest::Kind::kRoundUfp,
        SolveRequest::Kind::kRoundSap}) {
    SolveRequest request;
    request.kind = kind;
    request.instance_text = text;
    const Client::SolveOutcome fresh = client.solve(request);
    const Client::SolveOutcome cached = client.solve(request);
    ASSERT_TRUE(fresh.ok) << fresh.error_message;
    ASSERT_TRUE(cached.ok) << cached.error_message;
    EXPECT_EQ(cached.response.solution_text, fresh.response.solution_text);
    EXPECT_EQ(cached.response.rounds, fresh.response.rounds);
    // Byte-level replay: even the stored timing is echoed back.
    EXPECT_EQ(cached.response.wall_micros, fresh.response.wall_micros);
    EXPECT_EQ(cached.response.is_round,
              kind != SolveRequest::Kind::kPath);
  }

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_misses, 3u);  // one lane per kind
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.cache_entries, 3u);
  server.stop();
}

TEST(ServiceRoundTest, ExpiredDeadlineDegradesRoundExactToValidPacking) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.kind = SolveRequest::Kind::kRoundSap;
  request.algo = "exact";
  request.deadline_ms = 10;
  request.instance_text = adversarial_exact_instance();
  const Client::SolveOutcome outcome = client.solve(request);

  // The branch-and-bound oracle cannot finish 48 tasks in 10 ms; the
  // response is still a success: a budget-free first-fit packing — valid,
  // just more rounds — marked degraded.
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_TRUE(outcome.response.degraded);
  EXPECT_NE(outcome.response.skipped.find("solve.exact"), std::string::npos)
      << outcome.response.skipped;
  EXPECT_TRUE(outcome.response.is_round);

  std::istringstream inst_is(request.instance_text);
  const PathInstance inst = read_path_instance(inst_is);
  std::istringstream sol_is(outcome.response.solution_text);
  const round::RoundAssignment assignment = read_round_assignment(sol_is);
  const VerifyResult check = round::verify_round_assignment(inst, assignment);
  EXPECT_TRUE(check) << check.reason;
  EXPECT_EQ(outcome.response.rounds, assignment.num_rounds());
  EXPECT_GE(outcome.response.rounds, 1u);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.requests_degraded, 1u);
  EXPECT_EQ(stats.requests_deadline_exceeded, 0u);
  server.stop();
}

TEST(ServiceRoundTest, CertificateRequestOnRoundKindRejectedTyped) {
  Server server(ServerOptions{});
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  SolveRequest request;
  request.kind = SolveRequest::Kind::kRoundUfp;
  request.want_certificate = true;
  request.instance_text =
      "sap-path v1\nedges 1\ncapacities 4\ntasks 1\n0 0 2 5\n";
  Client::SolveOutcome outcome = client.solve(request);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, ErrorCode::kBadRequest);
  EXPECT_NE(outcome.error_message.find("not defined for round kinds"),
            std::string::npos)
      << outcome.error_message;

  // The connection survives: the same request without the flag succeeds.
  request.want_certificate = false;
  outcome = client.solve(request);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_TRUE(outcome.response.is_round);
  server.stop();
}

TEST(ServiceShardTest, ShardedServerServesCorrectlyAndReportsPerShardGauges) {
  ServerOptions options;
  options.shards = 4;
  options.solver_threads = 4;
  options.pin_cpus = false;  // CI runners dislike affinity asserts
  Server server(options);
  server.start();

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRequestsPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port(), &failures] {
      Client client;
      client.connect("127.0.0.1", port);
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        const std::uint64_t seed = 31 * c + r;
        Rng rng(seed);
        PathGenOptions gen;
        gen.num_edges = 8;
        gen.num_tasks = 10;
        SolveRequest request;
        request.seed = seed;
        request.instance_text = to_string(generate_path_instance(gen, rng));
        const Client::SolveOutcome outcome = client.solve(request);
        if (!outcome.ok) {
          ++failures;
          continue;
        }
        const std::string expected = reference_path_solution(
            request.instance_text, request.eps, request.seed);
        if (outcome.response.solution_text != expected) ++failures;
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats_snapshot();
  EXPECT_EQ(stats.requests_ok, kClients * kRequestsPerClient);
  ASSERT_EQ(stats.shards.size(), 4u);
  for (const ShardPool::ShardGauges& shard : stats.shards) {
    EXPECT_EQ(shard.queue_depth, 0u);
    EXPECT_EQ(shard.active, 0u);
  }
  server.stop();
}

}  // namespace
}  // namespace sap::service
