// Tests for the SAP-U specialized solver and the rounded-shelf DSA engine.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/sap_solver.hpp"
#include "src/dsa/dsa.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/sapu/sapu_solver.hpp"

namespace sap {
namespace {

PathInstance uniform_instance(Rng& rng, std::size_t n, Value cap,
                              DemandClass demand = DemandClass::kMixed) {
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = n;
  opt.profile = CapacityProfile::kUniform;
  opt.min_capacity = cap;
  opt.max_capacity = cap;
  opt.demand = demand;
  return generate_path_instance(opt, rng);
}

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

TEST(SapUniformTest, RejectsNonUniform) {
  const PathInstance inst({4, 8}, {Task{0, 0, 1, 1}});
  EXPECT_THROW(solve_sap_uniform(inst), std::invalid_argument);
}

TEST(SapUniformTest, FeasibleAndReportsClasses) {
  Rng rng(307);
  for (int trial = 0; trial < 10; ++trial) {
    const PathInstance inst = uniform_instance(rng, 24, 16);
    SapUniformReport report;
    const SapSolution sol = solve_sap_uniform(inst, {}, &report);
    ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
    EXPECT_EQ(report.num_small + report.num_large, inst.num_tasks());
    EXPECT_EQ(sol.weight(inst),
              std::max(report.small_weight, report.large_weight));
  }
}

TEST(SapUniformTest, CompetitiveWithExactOnSmallInstances) {
  Rng rng(311);
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 8; ++trial) {
    const PathInstance inst = uniform_instance(rng, 12, 12);
    const SapExactResult opt = sap_exact_profile_dp(inst);
    ASSERT_TRUE(opt.proven_optimal);
    if (opt.weight == 0) continue;
    ++checked;
    const SapSolution sol = solve_sap_uniform(inst);
    // [6]'s architecture gives a small constant; assert a loose envelope.
    EXPECT_GE(4 * sol.weight(inst), opt.weight) << "trial " << trial;
  }
  EXPECT_GT(checked, 0);
}

TEST(SapUniformTest, UsuallyBeatsGeneralPipelineOnUniformWorkloads) {
  Rng rng(313);
  int wins = 0;
  int ties = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const PathInstance inst = uniform_instance(rng, 30, 32);
    const Weight specialized = solve_sap_uniform(inst).weight(inst);
    const Weight general = solve_sap(inst).weight(inst);
    if (specialized > general) ++wins;
    if (specialized == general) ++ties;
  }
  // The specialized solver should not systematically lose.
  EXPECT_GE(2 * (wins + ties), trials);
}

TEST(RoundedShelfTest, PlacesEverythingDisjointly) {
  Rng rng(317);
  for (int trial = 0; trial < 10; ++trial) {
    const PathInstance inst = uniform_instance(rng, 30, 64);
    const DsaResult r = dsa_pack_rounded(inst, all_ids(inst));
    EXPECT_EQ(r.solution.size(), inst.num_tasks());
    EXPECT_TRUE(verify_sap_packable(inst, r.solution, r.makespan));
    EXPECT_GE(r.makespan, r.load);
  }
}

TEST(RoundedShelfTest, PowerOfTwoDemandsPackTightPerClass) {
  // Four demand-4 tasks on disjoint edges: one shelf of height 4.
  const PathInstance inst({8, 8, 8, 8},
                          {Task{0, 0, 4, 1}, Task{1, 1, 4, 1},
                           Task{2, 2, 4, 1}, Task{3, 3, 4, 1}});
  const DsaResult r = dsa_pack_rounded(inst, all_ids(inst));
  EXPECT_EQ(r.makespan, 4);
}

TEST(RoundedShelfTest, PortfolioIncludesRoundedEngine) {
  // Pathological first-fit case where rounding wins is hard to pin down;
  // at minimum the portfolio must never be worse than the rounded engine.
  Rng rng(331);
  const PathInstance inst = uniform_instance(rng, 40, 64);
  const DsaResult rounded = dsa_pack_rounded(inst, all_ids(inst));
  const DsaResult portfolio = dsa_pack_portfolio(inst, all_ids(inst));
  EXPECT_LE(portfolio.makespan, rounded.makespan);
}

TEST(ElevatorLemma14Test, SplitModeFeasibleAndComparable) {
  Rng rng(337);
  for (int trial = 0; trial < 8; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 14;
    opt.min_capacity = 8;
    opt.max_capacity = 32;
    opt.demand = DemandClass::kMedium;
    const PathInstance inst = generate_path_instance(opt, rng);
    SolverParams direct;
    SolverParams split;
    split.elevator_mode = 1;  // ElevatorMode::kLemma14Split
    const SapSolution a = solve_medium_tasks(inst, all_ids(inst), direct);
    const SapSolution b = solve_medium_tasks(inst, all_ids(inst), split);
    ASSERT_TRUE(verify_sap(inst, a)) << verify_sap(inst, a).reason;
    ASSERT_TRUE(verify_sap(inst, b)) << verify_sap(inst, b).reason;
    // The direct floored DP returns the *optimal* elevated solution per
    // band, so it can never lose to the split of an unconstrained optimum.
    EXPECT_GE(a.weight(inst), b.weight(inst)) << "trial " << trial;
    if (b.weight(inst) > 0) {
      // The split keeps at least half of each band's unconstrained optimum
      // minus integral-lift casualties; assert a loose aggregate envelope.
      EXPECT_GE(3 * b.weight(inst), a.weight(inst));
    }
  }
}

}  // namespace
}  // namespace sap
