// Tests for the AlmostUniform / Elevator medium-task pipeline (Theorem 2).
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/medium_tasks.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

PathInstance medium_instance(Rng& rng, std::size_t num_tasks = 16,
                             Value max_cap = 32) {
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = num_tasks;
  opt.min_capacity = 8;
  opt.max_capacity = max_cap;
  opt.demand = DemandClass::kMedium;
  opt.delta = {1, 8};
  opt.k_large = 2;
  return generate_path_instance(opt, rng);
}

TEST(ElevatorTest, SolutionIsElevatedAndFeasible) {
  Rng rng(139);
  const PathInstance inst = medium_instance(rng);
  SolverParams params;  // beta = 1/4
  // Band k = 3: bottlenecks in [8, 8 * 2^ell).
  std::vector<TaskId> band;
  const int ell = params.effective_ell();
  for (TaskId j : all_ids(inst)) {
    const Value b = inst.bottleneck(j);
    if (b >= 8 && b < (Value{8} << ell)) band.push_back(j);
  }
  if (band.empty()) GTEST_SKIP() << "no band members drawn";
  const SapSolution sol = elevator(inst, band, 3, ell, params);
  EXPECT_TRUE(verify_sap(inst, sol));
  for (const Placement& p : sol.placements) {
    EXPECT_GE(p.height, 2);  // ceil(1/4 * 2^3)
  }
}

TEST(MediumTasksTest, FeasibleOnRandomInstances) {
  Rng rng(149);
  for (int trial = 0; trial < 10; ++trial) {
    const PathInstance inst = medium_instance(rng);
    SolverParams params;
    MediumTasksReport report;
    const SapSolution sol =
        solve_medium_tasks(inst, all_ids(inst), params, &report);
    ASSERT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
    EXPECT_GT(report.q, 0);
    EXPECT_GT(report.ell, 0);
  }
}

TEST(MediumTasksTest, NoTaskAppearsTwiceInOneResidue) {
  Rng rng(151);
  const PathInstance inst = medium_instance(rng, 20);
  SolverParams params;
  const SapSolution sol = solve_medium_tasks(inst, all_ids(inst), params);
  std::vector<bool> seen(inst.num_tasks(), false);
  for (const Placement& p : sol.placements) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(p.task)]);
    seen[static_cast<std::size_t>(p.task)] = true;
  }
}

TEST(MediumTasksTest, WithinTheoremBoundAgainstExactOptimum) {
  // Theorem 2: (2 + eps)-approximation. With eps from the default params
  // the guarantee is (1 + eps) * 2; allow the exact bound.
  Rng rng(157);
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 8; ++trial) {
    const PathInstance inst = medium_instance(rng, 10, 16);
    if (inst.num_tasks() < 4) continue;
    SolverParams params;
    params.eps = 1.0;  // ell = q -> guarantee (1+1)*2 = 4
    const SapSolution sol = solve_medium_tasks(inst, all_ids(inst), params);
    const SapExactResult opt = sap_exact_profile_dp(inst);
    ASSERT_TRUE(opt.proven_optimal);
    if (opt.weight == 0) continue;
    ++checked;
    EXPECT_GE(4 * sol.weight(inst), opt.weight) << "trial " << trial;
  }
  EXPECT_GT(checked, 0);
}

TEST(MediumTasksTest, HeuristicModeStaysFeasibleOnTallInstances) {
  Rng rng(163);
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 30;
  opt.min_capacity = 512;
  opt.max_capacity = 4096;
  opt.demand = DemandClass::kMedium;
  const PathInstance inst = generate_path_instance(opt, rng);
  SolverParams params;  // heuristic kicks in above capacity 512
  MediumTasksReport report;
  const SapSolution sol =
      solve_medium_tasks(inst, all_ids(inst), params, &report);
  EXPECT_TRUE(verify_sap(inst, sol)) << verify_sap(inst, sol).reason;
  bool any_heuristic = false;
  for (const BandInfo& b : report.bands) any_heuristic |= !b.exact;
  EXPECT_TRUE(any_heuristic);
}

}  // namespace
}  // namespace sap
