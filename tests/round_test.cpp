// Tests for the Round-SAP / Round-UFP subsystem: solution model and lower
// bound, independent verifier (positive and negative), approximation
// pipelines (validity, determinism, deadline contract, portfolio arm),
// wire format round-trip + hardened rejects, the exact oracle on hand
// instances, generator NBA clamping, and the ratio measurement glue.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/io/instance_io.hpp"
#include "src/round/approx.hpp"
#include "src/round/exact.hpp"
#include "src/round/gen.hpp"
#include "src/round/ratio.hpp"
#include "src/round/verify.hpp"
#include "src/util/deadline.hpp"

namespace sap::round {
namespace {

// ---------------------------------------------------------------- solution

TEST(RoundSolutionTest, KindNamesRoundTrip) {
  EXPECT_STREQ(round_kind_name(RoundKind::kUfp), "round-ufp");
  EXPECT_STREQ(round_kind_name(RoundKind::kSap), "round-sap");
  EXPECT_EQ(parse_round_kind("round-ufp"), RoundKind::kUfp);
  EXPECT_EQ(parse_round_kind("round-sap"), RoundKind::kSap);
  EXPECT_THROW((void)parse_round_kind("ring"), std::invalid_argument);
  EXPECT_THROW((void)parse_round_kind(""), std::invalid_argument);
}

TEST(RoundSolutionTest, LowerBoundEmptyInstanceIsZero) {
  const PathInstance inst({5}, {});
  EXPECT_EQ(round_lower_bound(inst), 0);
}

TEST(RoundSolutionTest, LowerBoundLoadDominates) {
  // Five unit tasks on one edge of capacity 2: load bound ceil(5/2) = 3,
  // no conflicts (2*1 <= 2).
  const PathInstance inst(
      {2}, {{0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1},
            {0, 0, 1, 1}});
  EXPECT_EQ(round_lower_bound(inst), 3);
}

TEST(RoundSolutionTest, LowerBoundCliqueDominates) {
  // Three tasks of demand 3 on one edge of capacity 4: load bound
  // ceil(9/4) = 3, clique bound 3 (2*3 > 4) — equal here, so also check a
  // case where the clique strictly wins: demand 3, capacity 5.
  const PathInstance inst(
      {5}, {{0, 0, 3, 1}, {0, 0, 3, 1}, {0, 0, 3, 1}});
  // Load bound ceil(9/5) = 2; clique bound 3 (2*3 > 5).
  EXPECT_EQ(round_lower_bound(inst), 3);
}

// ---------------------------------------------------------------- verifier

PathInstance two_task_instance() {
  // Edge capacities {4, 4}; tasks: [0,1]x3 and [1,1]x2 — they overlap on
  // edge 1 and cannot share a UFP round (3+2 > 4).
  return PathInstance({4, 4}, {{0, 1, 3, 1}, {1, 1, 2, 1}});
}

TEST(RoundVerifyTest, AcceptsValidUfpPartition) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 0}}}, SapSolution{{{1, 0}}}};
  EXPECT_TRUE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, AcceptsValidSapPartition) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kSap;
  a.rounds = {SapSolution{{{0, 0}}}, SapSolution{{{1, 2}}}};
  EXPECT_TRUE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, RejectsMissingTask) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 0}}}};  // task 1 unassigned
  const VerifyResult check = verify_round_assignment(inst, a);
  EXPECT_FALSE(check);
}

TEST(RoundVerifyTest, RejectsDuplicateAcrossRounds) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 0}, {1, 0}}}, SapSolution{{{1, 0}}}};
  EXPECT_FALSE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, RejectsIdOutOfRange) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 0}}}, SapSolution{{{7, 0}}}};
  EXPECT_FALSE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, RejectsNonzeroHeightInUfpRound) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 1}}}, SapSolution{{{1, 0}}}};
  EXPECT_FALSE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, RejectsOverloadedUfpRound) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kUfp;
  a.rounds = {SapSolution{{{0, 0}, {1, 0}}}};  // 3+2 > 4 on edge 1
  EXPECT_FALSE(verify_round_assignment(inst, a));
}

TEST(RoundVerifyTest, RejectsOverlappingSapPlacements) {
  const PathInstance inst = two_task_instance();
  RoundAssignment a;
  a.kind = RoundKind::kSap;
  // Heights [0,3) and [1,3) overlap on edge 1.
  a.rounds = {SapSolution{{{0, 0}, {1, 1}}}};
  EXPECT_FALSE(verify_round_assignment(inst, a));
}

// ------------------------------------------------------------------ approx

TEST(RoundApproxTest, ValidOnRandomNbaInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    RoundGenOptions gen;
    gen.base.num_edges = 10;
    gen.base.num_tasks = 30;
    const PathInstance inst = generate_round_instance(gen, rng);
    RoundApproxReport report;
    const RoundAssignment ufp = solve_round_ufp_approx(inst, {}, &report);
    EXPECT_TRUE(verify_round_assignment(inst, ufp));
    EXPECT_GE(static_cast<Value>(ufp.num_rounds()), report.lower_bound);
    const RoundAssignment sap = solve_round_sap_approx(inst, {}, &report);
    EXPECT_TRUE(verify_round_assignment(inst, sap));
    // Any SAP round is a UFP round, so the SAP count can never beat a
    // valid lower bound either.
    EXPECT_GE(static_cast<Value>(sap.num_rounds()), report.lower_bound);
  }
}

TEST(RoundApproxTest, ValidOnGeneralCapacityInstances) {
  Rng rng(1717);
  for (int trial = 0; trial < 25; ++trial) {
    RoundGenOptions gen;
    gen.base.num_edges = 12;
    gen.base.num_tasks = 24;
    gen.base.profile = CapacityProfile::kValley;
    gen.enforce_nba = false;
    const PathInstance inst = generate_round_instance(gen, rng);
    EXPECT_TRUE(verify_round_assignment(inst,
                                        solve_round_ufp_approx(inst)));
    EXPECT_TRUE(verify_round_assignment(inst,
                                        solve_round_sap_approx(inst)));
  }
}

TEST(RoundApproxTest, DeterministicAcrossRuns) {
  Rng rng(99);
  RoundGenOptions gen;
  gen.base.num_edges = 8;
  gen.base.num_tasks = 20;
  const PathInstance inst = generate_round_instance(gen, rng);
  const RoundAssignment a = solve_round_sap_approx(inst);
  const RoundAssignment b = solve_round_sap_approx(inst);
  ASSERT_EQ(a.num_rounds(), b.num_rounds());
  for (std::size_t r = 0; r < a.num_rounds(); ++r) {
    EXPECT_EQ(a.rounds[r].placements, b.rounds[r].placements);
  }
}

TEST(RoundApproxTest, PortfolioOffStillValid) {
  Rng rng(55);
  RoundGenOptions gen;
  gen.base.num_edges = 8;
  gen.base.num_tasks = 24;
  const PathInstance inst = generate_round_instance(gen, rng);
  RoundApproxOptions options;
  options.portfolio = false;
  const RoundAssignment plain = solve_round_sap_approx(inst, options);
  EXPECT_TRUE(verify_round_assignment(inst, plain));
  // The portfolio can only improve (or tie) the first-fit count.
  const RoundAssignment best = solve_round_sap_approx(inst);
  EXPECT_LE(best.num_rounds(), plain.num_rounds());
}

TEST(RoundApproxTest, ExpiredDeadlineThrows) {
  Rng rng(7);
  RoundGenOptions gen;
  gen.base.num_edges = 8;
  gen.base.num_tasks = 40;
  const PathInstance inst = generate_round_instance(gen, rng);
  RoundApproxOptions options;
  options.deadline = Deadline::after_ms(0);
  EXPECT_THROW((void)solve_round_ufp_approx(inst, options),
               DeadlineExceeded);
  EXPECT_THROW((void)solve_round_sap_approx(inst, options),
               DeadlineExceeded);
}

TEST(RoundApproxTest, EmptyInstanceYieldsZeroRounds) {
  const PathInstance inst({3, 3}, {});
  EXPECT_EQ(solve_round_ufp_approx(inst).num_rounds(), 0u);
  EXPECT_EQ(solve_round_sap_approx(inst).num_rounds(), 0u);
}

// ---------------------------------------------------------------------- io

TEST(RoundIoTest, RoundTripBothKinds) {
  Rng rng(31);
  RoundGenOptions gen;
  gen.base.num_edges = 6;
  gen.base.num_tasks = 15;
  const PathInstance inst = generate_round_instance(gen, rng);
  for (const RoundKind kind : {RoundKind::kUfp, RoundKind::kSap}) {
    const RoundAssignment a = kind == RoundKind::kUfp
                                  ? solve_round_ufp_approx(inst)
                                  : solve_round_sap_approx(inst);
    std::stringstream buffer;
    write_round_assignment(buffer, a);
    const RoundAssignment back = read_round_assignment(buffer);
    ASSERT_EQ(back.kind, a.kind);
    ASSERT_EQ(back.num_rounds(), a.num_rounds());
    for (std::size_t r = 0; r < a.num_rounds(); ++r) {
      EXPECT_EQ(back.rounds[r].placements, a.rounds[r].placements);
    }
  }
}

TEST(RoundIoTest, RejectsBadHeaderAndKind) {
  {
    std::istringstream is("sap-solution v1\n");
    EXPECT_THROW((void)read_round_assignment(is), std::invalid_argument);
  }
  {
    std::istringstream is("round-solution v1\nkind ring\nrounds 0\n");
    EXPECT_THROW((void)read_round_assignment(is), std::invalid_argument);
  }
}

TEST(RoundIoTest, BoundsRoundCountByReadLimits) {
  std::istringstream is("round-solution v1\nkind round-ufp\nrounds 100\n");
  ReadLimits limits;
  limits.max_placements = 10;
  EXPECT_THROW((void)read_round_assignment(is, limits),
               std::invalid_argument);
}

TEST(RoundIoTest, BoundsCumulativePlacementsByReadLimits) {
  // 3 rounds x 4 placements = 12 > 10: must reject before materializing.
  std::ostringstream text;
  text << "round-solution v1\nkind round-ufp\nrounds 3\n";
  for (int r = 0; r < 3; ++r) {
    text << "round 4\n";
    for (int p = 0; p < 4; ++p) text << (r * 4 + p) << " 0\n";
  }
  std::istringstream is(text.str());
  ReadLimits limits;
  limits.max_placements = 10;
  EXPECT_THROW((void)read_round_assignment(is, limits),
               std::invalid_argument);
}

// ------------------------------------------------------------------- exact

TEST(RoundExactTest, ProvesPairwiseConflictTriangle) {
  // Three pairwise-overlapping tasks of demand 3 under uniform capacity 5:
  // no two share a round, optimum 3.
  const PathInstance inst(
      {5, 5, 5}, {{0, 1, 3, 1}, {1, 2, 3, 1}, {0, 2, 3, 1}});
  for (const RoundKind kind : {RoundKind::kUfp, RoundKind::kSap}) {
    const RoundExactResult r = solve_round_exact(inst, kind);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.rounds, 3);
    EXPECT_TRUE(verify_round_assignment(inst, r.assignment));
  }
}

TEST(RoundExactTest, PacksCompatibleTasksIntoOneRound) {
  const PathInstance inst({4, 4}, {{0, 0, 2, 1}, {1, 1, 2, 1},
                                   {0, 1, 2, 1}});
  const RoundExactResult r = solve_round_exact(inst, RoundKind::kSap);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_TRUE(verify_round_assignment(inst, r.assignment));
}

TEST(RoundExactTest, EmptyInstanceIsProvenZero) {
  const PathInstance inst({2}, {});
  const RoundExactResult r = solve_round_exact(inst, RoundKind::kUfp);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.rounds, 0);
}

TEST(RoundExactTest, ExpiredDeadlineReportsTimedOut) {
  Rng rng(13);
  RoundGenOptions gen;
  gen.base.num_edges = 8;
  gen.base.num_tasks = 30;
  const PathInstance inst = generate_round_instance(gen, rng);
  RoundExactOptions options;
  options.deadline = Deadline::after_ms(0);
  const RoundExactResult r = solve_round_exact(inst, RoundKind::kSap,
                                               options);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.rounds, 0);
}

// --------------------------------------------------------------------- gen

TEST(RoundGenTest, NbaClampsDemandsToMinCapacity) {
  Rng rng(5);
  RoundGenOptions gen;
  gen.base.num_edges = 10;
  gen.base.num_tasks = 40;
  gen.base.profile = CapacityProfile::kValley;
  const PathInstance inst = generate_round_instance(gen, rng);
  const Value cmin = inst.min_capacity();
  for (const Task& t : inst.tasks()) EXPECT_LE(t.demand, cmin);
}

TEST(RoundGenTest, DeterministicInSeed) {
  RoundGenOptions gen;
  gen.base.num_edges = 6;
  gen.base.num_tasks = 12;
  Rng a(77);
  Rng b(77);
  EXPECT_EQ(generate_round_instance(gen, a).tasks(),
            generate_round_instance(gen, b).tasks());
}

// ------------------------------------------------------------------- ratio

TEST(RoundRatioTest, OracleNeverExceedsApproxAndRespectsLowerBound) {
  Rng rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    RoundGenOptions gen;
    gen.base.num_edges = 5;
    gen.base.num_tasks = 8;
    const PathInstance inst = generate_round_instance(gen, rng);
    for (const RoundKind kind : {RoundKind::kUfp, RoundKind::kSap}) {
      const RoundRatioMeasurement m = measure_round_ratio(inst, kind);
      EXPECT_TRUE(m.approx_valid);
      EXPECT_LE(m.oracle_rounds, m.approx_rounds);
      EXPECT_GE(m.oracle_rounds, m.lower_bound);
    }
  }
}

}  // namespace
}  // namespace sap::round
