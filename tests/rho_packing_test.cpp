// Tests for the Section-8 open-problem module: min-rho packing under a
// non-uniform capacity vector.
#include <gtest/gtest.h>

#include <numeric>

#include "src/dsa/rho_packing.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

/// Checks the witness against the scaled ceilings it claims to satisfy.
void expect_valid_witness(const PathInstance& inst, const RhoPackResult& r,
                          std::size_t expected_tasks) {
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.solution.size(), expected_tasks);
  // Vertical disjointness (capacity handled by the ceilings below).
  EXPECT_TRUE(verify_sap_packable(inst, r.solution,
                                  std::numeric_limits<Value>::max() / 4));
  for (const Placement& p : r.solution.placements) {
    const Task& t = inst.task(p.task);
    for (EdgeId e = t.first; e <= t.last; ++e) {
      const double ceiling =
          r.rho * static_cast<double>(inst.capacity(e));
      EXPECT_LE(static_cast<double>(p.height + t.demand), ceiling + 1e-9);
    }
  }
}

TEST(RhoPackingTest, AlreadyFeasibleInstancesNeedRhoAtMostOne) {
  // Disjoint tasks that fit: rho <= 1 (and >= load/c on the used edges).
  const PathInstance inst({8, 8}, {Task{0, 0, 4, 1}, Task{1, 1, 4, 1}});
  const RhoPackResult r = rho_pack_all(inst, all_ids(inst));
  expect_valid_witness(inst, r, 2);
  EXPECT_LE(r.rho, 1.0 + 1e-9);
  EXPECT_NEAR(r.lower_bound, 0.5, 1e-9);
}

TEST(RhoPackingTest, OverloadedEdgeForcesRhoAboveOne) {
  // Two demand-3 tasks on one capacity-4 edge: load 6 -> rho >= 1.5.
  const PathInstance inst({4}, {Task{0, 0, 3, 1}, Task{0, 0, 3, 1}});
  const RhoPackResult r = rho_pack_all(inst, all_ids(inst));
  expect_valid_witness(inst, r, 2);
  EXPECT_NEAR(r.lower_bound, 1.5, 1e-9);
  EXPECT_GE(r.rho, 1.5 - 1e-9);
  // Stacking two demand-3 tasks needs ceiling 6 = 1.5 * 4: tight.
  EXPECT_NEAR(r.rho, 1.5, 1.0 / 64 + 1e-9);
}

TEST(RhoPackingTest, EmptySubset) {
  const PathInstance inst({4}, {Task{0, 0, 1, 1}});
  const RhoPackResult r = rho_pack_all(inst, {});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.rho, 0.0);
}

TEST(RhoPackingTest, RhoNeverBelowLowerBoundOnRandomWorkloads) {
  Rng rng(379);
  for (int trial = 0; trial < 15; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 12;
    opt.num_tasks = 30;
    opt.profile = static_cast<CapacityProfile>(trial % 5);
    opt.min_capacity = 8;
    opt.max_capacity = 32;
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 4};
    const PathInstance inst = generate_path_instance(opt, rng);
    const RhoPackResult r = rho_pack_all(inst, all_ids(inst));
    expect_valid_witness(inst, r, inst.num_tasks());
    EXPECT_GE(r.rho + 1e-9, r.lower_bound) << "trial " << trial;
    // Small tasks: the heuristic should stay within a small factor of the
    // LOAD bound (the open problem conjectures ~1 is achievable).
    EXPECT_LE(r.rho, 3.0 * std::max(0.125, r.lower_bound))
        << "trial " << trial;
  }
}

TEST(RhoPackingTest, PackUnderCeilingsRespectsTightCeilings) {
  const PathInstance inst({10, 10}, {Task{0, 1, 4, 1}, Task{0, 1, 4, 1}});
  const std::vector<Value> tight{8, 8};
  const SapSolution ok = pack_under_ceilings(inst, all_ids(inst), tight);
  EXPECT_EQ(ok.size(), 2u);
  const std::vector<Value> too_tight{7, 7};
  const SapSolution fail =
      pack_under_ceilings(inst, all_ids(inst), too_tight);
  EXPECT_TRUE(fail.empty());
}

}  // namespace
}  // namespace sap
