// Exhaustive tiny-instance differential sweep (no random sampling): every
// instance of a systematically enumerated family with <= 6 tasks and
// capacities <= 6 is pushed through the full approximation pipelines and
// checked against exact oracles —
//   paths: solve_sap output feasible under model/verify and weight <= the
//          exact/profile_dp optimum (proven optimal at these sizes);
//   rings: solve_ring_sap output feasible and weight <= an independent
//          test-local brute force over subsets x orientations x heights.
// This hardens the randomized coverage of property_test.cpp and
// ring_property_test.cpp at the sizes where exhaustive checking is free.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "src/core/ring_solver.hpp"
#include "src/core/sap_solver.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

constexpr std::size_t kMaxTasks = 6;

/// Deterministic small weight so ties and dominance vary across the pool.
Weight task_weight(int first, int last, Value demand) {
  return 1 + (first + 2 * last + 3 * static_cast<int>(demand)) % 5;
}

/// All distinct candidate demands for a range with bottleneck b: unit, half,
/// and full height.
std::vector<Value> candidate_demands(Value b) {
  std::vector<Value> demands{1, (b + 1) / 2, b};
  std::ranges::sort(demands);
  demands.erase(std::unique(demands.begin(), demands.end()), demands.end());
  return demands;
}

/// The task pool of a capacity pattern: every edge range crossed with every
/// candidate demand (all of them fit under their bottleneck by
/// construction).
std::vector<Task> path_task_pool(const std::vector<Value>& caps) {
  std::vector<Task> pool;
  const int m = static_cast<int>(caps.size());
  for (int first = 0; first < m; ++first) {
    for (int last = first; last < m; ++last) {
      Value b = caps[static_cast<std::size_t>(first)];
      for (int e = first + 1; e <= last; ++e) {
        b = std::min(b, caps[static_cast<std::size_t>(e)]);
      }
      for (Value d : candidate_demands(b)) {
        pool.push_back({static_cast<EdgeId>(first), static_cast<EdgeId>(last),
                        d, task_weight(first, last, d)});
      }
    }
  }
  return pool;
}

/// Every window of w <= kMaxTasks consecutive pool tasks, for every w.
/// Linear in the pool (not exponential), yet covers every task in many
/// different neighbourhoods, including the singleton and the densest mixes.
template <typename TaskT, typename Visit>
void for_each_window(const std::vector<TaskT>& pool, const Visit& visit) {
  for (std::size_t w = 1; w <= std::min(kMaxTasks, pool.size()); ++w) {
    for (std::size_t start = 0; start + w <= pool.size(); ++start) {
      visit(std::vector<TaskT>(
          pool.begin() + static_cast<std::ptrdiff_t>(start),
          pool.begin() + static_cast<std::ptrdiff_t>(start + w)));
    }
  }
}

TEST(TinyDifferentialTest, PathSolverNeverBeatsOrBreaksTheOracle) {
  const std::vector<std::vector<Value>> patterns = {
      {1},          {2},          {3},          {4},          {5},
      {6},          {1, 1},       {1, 6},       {6, 1},       {2, 4},
      {4, 2},       {6, 6},       {3, 5},       {5, 3},       {1, 1, 1},
      {3, 3, 3},    {6, 6, 6},    {1, 6, 1},    {6, 1, 6},    {2, 4, 6},
      {6, 4, 2},    {5, 2, 5},    {1, 2, 3, 4}, {4, 3, 2, 1}, {6, 1, 6, 1},
      {2, 6, 6, 2}, {5, 5, 5, 5}, {3, 1, 4, 1},
  };
  std::size_t instances = 0;
  for (const auto& caps : patterns) {
    const std::vector<Task> pool = path_task_pool(caps);
    for_each_window(pool, [&](std::vector<Task> tasks) {
      const PathInstance inst(caps, std::move(tasks));
      ++instances;

      const SapSolution sol = solve_sap(inst);
      const VerifyResult feasible = verify_sap(inst, sol);
      ASSERT_TRUE(feasible) << "instance " << instances << ": "
                            << feasible.reason;

      const SapExactResult oracle = sap_exact_profile_dp(inst);
      ASSERT_TRUE(oracle.proven_optimal) << "instance " << instances;
      EXPECT_LE(sol.weight(inst), oracle.weight) << "instance " << instances;
      // At <= 6 tasks the pipeline must find something whenever anything
      // fits at all (each class solver alone packs at least one task).
      if (oracle.weight > 0) {
        EXPECT_GT(sol.weight(inst), 0) << "instance " << instances;
      }
    });
  }
  // Exhaustiveness guard: the family must not silently collapse (the
  // enumeration above yields ~1500 instances; allow slack for tweaks).
  EXPECT_GT(instances, 1000u);
}

TEST(TinyDifferentialTest, SteepestEdgePricingMatchesDantzigOnRelaxations) {
  // Every tiny UFPP relaxation is solved under both pricing rules: the
  // pivot paths differ but the optima must agree to float tolerance, and
  // the steepest-edge value must still upper-bound the exact integral
  // optimum — the contract the branch-and-bound bound loop depends on.
  const std::vector<std::vector<Value>> patterns = {
      {2},       {4},       {1, 6},    {4, 2},        {6, 6},
      {1, 6, 1}, {2, 4, 6}, {5, 2, 5}, {3, 1, 4, 1},
  };
  std::size_t instances = 0;
  for (const auto& caps : patterns) {
    const std::vector<Task> pool = path_task_pool(caps);
    for_each_window(pool, [&](std::vector<Task> tasks) {
      const PathInstance inst(caps, std::move(tasks));
      ++instances;

      const LpProblem relax = build_ufpp_relaxation(inst);
      const LpSolution dantzig = solve_lp(relax);
      LpOptions options;
      options.pricing = LpPricing::kSteepestEdge;
      const LpSolution steepest = solve_lp(relax, options);
      ASSERT_EQ(dantzig.status, LpStatus::kOptimal)
          << "instance " << instances;
      ASSERT_EQ(steepest.status, LpStatus::kOptimal)
          << "instance " << instances;
      EXPECT_NEAR(dantzig.objective, steepest.objective, 1e-6)
          << "instance " << instances;

      const SapExactResult oracle = sap_exact_profile_dp(inst);
      ASSERT_TRUE(oracle.proven_optimal) << "instance " << instances;
      EXPECT_GE(steepest.objective + 1e-6,
                static_cast<double>(oracle.weight))
          << "instance " << instances;
    });
  }
  EXPECT_GT(instances, 300u);
}

/// A ring task plus its enumeration metadata.
struct TinyRingTask {
  RingTask task;
};

/// Independent exact ring-SAP oracle: DFS over tasks in order; each task is
/// skipped or placed with an orientation and an integral height (integral
/// heights are WLOG for integral demands, the gravity argument of
/// Observation 11 applied on every edge of the route). Written without any
/// solver machinery so it cannot share a bug with solve_ring_sap.
Weight ring_opt_brute_force(const RingInstance& ring) {
  struct Placed {
    std::vector<EdgeId> route;
    Value lo = 0;
    Value hi = 0;
  };
  std::vector<Placed> placed;
  const std::size_t n = ring.num_tasks();

  // Suffix weights for the standard DFS weight-pruning bound.
  std::vector<Weight> suffix(n + 1, 0);
  for (std::size_t j = n; j-- > 0;) {
    suffix[j] = suffix[j + 1] + ring.task(static_cast<TaskId>(j)).weight;
  }

  Weight best = 0;
  std::function<void(std::size_t, Weight)> dfs = [&](std::size_t j,
                                                     Weight weight) {
    best = std::max(best, weight);
    if (j == n || weight + suffix[j] <= best) return;
    const auto id = static_cast<TaskId>(j);
    const RingTask& t = ring.task(id);
    for (const bool cw : {true, false}) {
      const std::vector<EdgeId> route = ring.route_edges(id, cw);
      const Value b = ring.route_bottleneck(id, cw);
      if (t.demand > b) continue;
      for (Value h = 0; h + t.demand <= b; ++h) {
        const bool clash = std::ranges::any_of(placed, [&](const Placed& p) {
          if (h >= p.hi || h + t.demand <= p.lo) return false;
          return std::ranges::any_of(route, [&](EdgeId e) {
            return std::ranges::find(p.route, e) != p.route.end();
          });
        });
        if (clash) continue;
        placed.push_back({route, h, h + t.demand});
        dfs(j + 1, weight + t.weight);
        placed.pop_back();
      }
    }
    dfs(j + 1, weight);  // skip
  };
  dfs(0, 0);
  return best;
}

std::vector<TinyRingTask> ring_task_pool(const std::vector<Value>& caps) {
  std::vector<TinyRingTask> pool;
  const int m = static_cast<int>(caps.size());
  for (int start = 0; start < m; ++start) {
    for (int end = 0; end < m; ++end) {
      if (start == end) continue;
      // Bottleneck of the better orientation, computed from scratch.
      Value cw = caps[static_cast<std::size_t>(start)];
      for (int v = start; v != end; v = (v + 1) % m) {
        cw = std::min(cw, caps[static_cast<std::size_t>(v)]);
      }
      Value ccw = caps[static_cast<std::size_t>(end)];
      for (int v = end; v != start; v = (v + 1) % m) {
        ccw = std::min(ccw, caps[static_cast<std::size_t>(v)]);
      }
      const Value b = std::max(cw, ccw);
      for (Value d : candidate_demands(b)) {
        pool.push_back({{start, end, d, task_weight(start, end, d)}});
      }
    }
  }
  return pool;
}

TEST(TinyDifferentialTest, RingSolverNeverBeatsOrBreaksBruteForce) {
  // Rings need >= 3 edges; DFS cost bounds the sweep at 4 tasks of height
  // <= 4, which is still exhaustive over the enumerated family.
  const std::vector<std::vector<Value>> patterns = {
      {2, 2, 2}, {4, 4, 4},    {1, 2, 3},    {4, 2, 4},
      {3, 1, 3}, {2, 2, 2, 2}, {4, 4, 4, 4}, {1, 4, 2, 3},
  };
  std::size_t instances = 0;
  for (const auto& caps : patterns) {
    std::vector<TinyRingTask> pool = ring_task_pool(caps);
    for_each_window(pool, [&](const std::vector<TinyRingTask>& window) {
      if (window.size() > 4) return;
      std::vector<RingTask> tasks;
      for (const TinyRingTask& t : window) tasks.push_back(t.task);
      const RingInstance ring(caps, std::move(tasks));
      ++instances;

      const RingSapSolution sol = solve_ring_sap(ring);
      const VerifyResult feasible = verify_ring_sap(ring, sol);
      ASSERT_TRUE(feasible) << "ring instance " << instances << ": "
                            << feasible.reason;

      const Weight oracle = ring_opt_brute_force(ring);
      EXPECT_LE(ring.solution_weight(sol), oracle)
          << "ring instance " << instances;
      if (oracle > 0) {
        EXPECT_GT(ring.solution_weight(sol), 0)
            << "ring instance " << instances;
      }
    });
  }
  EXPECT_GT(instances, 500u);
}

}  // namespace
}  // namespace sap
