// Unit tests for gravity compaction (Observation 11).
#include <gtest/gtest.h>

#include <numeric>

#include "src/exact/brute_force.hpp"
#include "src/gen/generators.hpp"
#include "src/model/gravity.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

TEST(GravityTest, FloatingTaskDropsToFloor) {
  const PathInstance inst({10}, {Task{0, 0, 2, 1}});
  const SapSolution lowered =
      apply_gravity(inst, SapSolution{{{0, 7}}});
  ASSERT_EQ(lowered.size(), 1u);
  EXPECT_EQ(lowered.placements[0].height, 0);
}

TEST(GravityTest, StackedTasksCompact) {
  // Two overlapping tasks placed with a gap between them.
  const PathInstance inst({10, 10}, {Task{0, 1, 2, 1}, Task{0, 1, 3, 1}});
  const SapSolution lowered =
      apply_gravity(inst, SapSolution{{{0, 1}, {1, 6}}});
  EXPECT_TRUE(verify_sap(inst, lowered));
  EXPECT_TRUE(is_grounded(inst, lowered));
  EXPECT_EQ(max_makespan(inst, lowered), 5);  // 2 + 3, no gaps
}

TEST(GravityTest, DoesNotMoveNonOverlappingTasksOntoEachOther) {
  const PathInstance inst({10, 10}, {Task{0, 0, 4, 1}, Task{1, 1, 4, 1}});
  const SapSolution lowered =
      apply_gravity(inst, SapSolution{{{0, 3}, {1, 5}}});
  EXPECT_TRUE(verify_sap(inst, lowered));
  for (const Placement& p : lowered.placements) EXPECT_EQ(p.height, 0);
}

TEST(GravityTest, NeverRaisesAndPreservesFeasibilityOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 10;
    opt.num_tasks = 12;
    opt.min_capacity = 6;
    opt.max_capacity = 12;
    const PathInstance inst = generate_path_instance(opt, rng);
    // Build some feasible solution with the brute-force oracle on a subset.
    std::vector<TaskId> subset;
    for (std::size_t j = 0; j < std::min<std::size_t>(8, inst.num_tasks());
         ++j) {
      subset.push_back(static_cast<TaskId>(j));
    }
    const SapSolution sol = sap_brute_force(inst, subset);
    ASSERT_TRUE(verify_sap(inst, sol));
    const SapSolution lowered = apply_gravity(inst, sol);
    ASSERT_TRUE(verify_sap(inst, lowered)) << verify_sap(inst, lowered).reason;
    EXPECT_TRUE(is_grounded(inst, lowered));
    ASSERT_EQ(lowered.size(), sol.size());
    // Heights never increase (matched by task id).
    for (const Placement& p : sol.placements) {
      for (const Placement& q : lowered.placements) {
        if (p.task == q.task) {
          EXPECT_LE(q.height, p.height);
        }
      }
    }
  }
}

TEST(GravityTest, GroundedDetectsFloatingPlacement) {
  const PathInstance inst({10}, {Task{0, 0, 2, 1}});
  EXPECT_FALSE(is_grounded(inst, SapSolution{{{0, 3}}}));
  EXPECT_TRUE(is_grounded(inst, SapSolution{{{0, 0}}}));
}

}  // namespace
}  // namespace sap
