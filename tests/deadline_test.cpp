// The cooperative-cancellation contract (src/util/deadline.hpp): a deadline
// never changes *what* is computed, only *whether* the computation finishes
// — either the full deterministic answer or a typed timeout, never a
// partial result. These tests pin the Deadline/DeadlineGate semantics and
// the typed-timeout behaviour of every solver layer that honours them.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "src/cert/ladder.hpp"
#include "src/core/rectangles.hpp"
#include "src/core/sap_solver.hpp"
#include "src/exact/brute_force.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/generators.hpp"
#include "src/lp/simplex.hpp"
#include "src/ufpp/branch_and_bound.hpp"
#include "src/util/deadline.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

/// A deadline that expired in the past: every gate check fires on its next
/// clock read, making timeout paths deterministic to test.
Deadline already_expired() {
  return Deadline::at(Deadline::Clock::now() - std::chrono::seconds(1));
}

/// Dense same-span heavy instances keep the profile DP frontier wide — the
/// adversarial shape the degradation ladder exists for.
PathInstance hard_instance(std::size_t tasks, std::uint64_t seed) {
  PathGenOptions opt;
  opt.num_edges = 12;
  opt.num_tasks = tasks;
  opt.min_capacity = 64;
  opt.max_capacity = 64;
  opt.mean_span_fraction = 0.8;
  Rng rng(seed);
  return generate_path_instance(opt, rng);
}

TEST(DeadlineTest, UnlimitedDeadlineNeverExpires) {
  const Deadline unlimited = Deadline::unlimited();
  EXPECT_FALSE(unlimited.has_deadline());
  EXPECT_FALSE(unlimited.expired());
  EXPECT_NO_THROW(unlimited.check());
  EXPECT_EQ(unlimited.remaining(), Deadline::Clock::duration::max());
}

TEST(DeadlineTest, ExpiredDeadlineReportsAndThrows) {
  const Deadline expired = already_expired();
  EXPECT_TRUE(expired.has_deadline());
  EXPECT_TRUE(expired.expired());
  EXPECT_THROW(expired.check(), DeadlineExceeded);
  EXPECT_EQ(expired.remaining_ms(), 0);
}

TEST(DeadlineTest, FutureDeadlineHasPositiveRemaining) {
  const Deadline soon = Deadline::after(std::chrono::hours(1));
  EXPECT_TRUE(soon.has_deadline());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.remaining_ms(), 0);
  EXPECT_NO_THROW(soon.check());
}

TEST(DeadlineTest, MinPicksTheEarlierDeadline) {
  const Deadline early = Deadline::after_ms(1);
  const Deadline late = Deadline::after(std::chrono::hours(1));
  EXPECT_EQ(early.min(late).when(), early.when());
  EXPECT_EQ(late.min(early).when(), early.when());
  // Unlimited is the identity element on both sides.
  EXPECT_EQ(Deadline::unlimited().min(early).when(), early.when());
  EXPECT_EQ(early.min(Deadline::unlimited()).when(), early.when());
  EXPECT_FALSE(Deadline::unlimited().min(Deadline::unlimited()).has_deadline());
}

TEST(DeadlineGateTest, GateLatchesOnceExpired) {
  DeadlineGate gate(already_expired(), /*stride=*/1);
  EXPECT_TRUE(gate.expired());
  EXPECT_TRUE(gate.expired());  // latched, no further clock reads needed
  EXPECT_THROW(gate.check(), DeadlineExceeded);
}

TEST(DeadlineGateTest, GateOnUnlimitedDeadlineIsFree) {
  DeadlineGate gate(Deadline::unlimited());
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_FALSE(gate.expired());
  }
}

TEST(DeadlineGateTest, StrideAmortizesClockReadsButStillFires) {
  DeadlineGate gate(already_expired(), /*stride=*/64);
  // The first call always reads the clock; an expired deadline is detected
  // immediately, not after `stride` calls.
  EXPECT_TRUE(gate.expired());
}

TEST(DeadlineSolverTest, ProfileDpReturnsTypedTimeoutNotPartialAnswer) {
  const PathInstance inst = hard_instance(20, 7);
  SapExactOptions options;
  options.deadline = already_expired();
  const SapExactResult result = sap_exact_profile_dp(inst, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(result.solution.placements.empty());
}

TEST(DeadlineSolverTest, ProfileDpWithGenerousDeadlineMatchesUnlimited) {
  const PathInstance inst = hard_instance(10, 11);
  SapExactOptions generous;
  generous.deadline = Deadline::after(std::chrono::hours(1));
  const SapExactResult with = sap_exact_profile_dp(inst, generous);
  const SapExactResult without = sap_exact_profile_dp(inst, SapExactOptions{});
  ASSERT_FALSE(with.timed_out);
  // Determinism: a non-binding deadline changes nothing.
  EXPECT_EQ(with.weight, without.weight);
  EXPECT_EQ(with.solution.placements.size(),
            without.solution.placements.size());
}

TEST(DeadlineSolverTest, BruteForceThrowsTypedExceptionOnExpiry) {
  const PathInstance inst = hard_instance(12, 3);
  SapBruteForceOptions options;
  options.deadline = already_expired();
  EXPECT_THROW((void)sap_brute_force(inst, options), DeadlineExceeded);
}

TEST(DeadlineSolverTest, UfppBranchAndBoundReturnsTypedTimeout) {
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 18;
  Rng rng(5);
  const PathInstance inst = generate_path_instance(opt, rng);
  UfppExactOptions options;
  options.deadline = already_expired();
  const UfppExactResult result = ufpp_exact(inst, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_TRUE(result.solution.tasks.empty());
}

TEST(DeadlineSolverTest, SimplexReturnsTimeoutStatus) {
  // maximize x + y subject to x + y <= 1, x, y >= 0.
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.constraints = {{{1.0, 1.0}, LpRelation::kLessEqual, 1.0}};
  const LpSolution expired = solve_lp(lp, 0, already_expired());
  EXPECT_EQ(expired.status, LpStatus::kTimeout);
  const LpSolution fine =
      solve_lp(lp, 0, Deadline::after(std::chrono::hours(1)));
  EXPECT_EQ(fine.status, LpStatus::kOptimal);
  EXPECT_NEAR(fine.objective, 1.0, 1e-9);
}

TEST(DeadlineSolverTest, RectangleMwisReturnsTypedTimeout) {
  std::vector<TaskRect> rects;
  for (int i = 0; i < 12; ++i) {
    TaskRect rect;
    rect.task = static_cast<TaskId>(i);
    rect.first = static_cast<EdgeId>(i % 4);
    rect.last = static_cast<EdgeId>(i % 4 + 2);
    rect.bottom = 0;
    rect.top = 4;
    rect.weight = 1 + i;
    rects.push_back(rect);
  }
  RectMwisOptions options;
  options.deadline = already_expired();
  const RectMwisResult result = rectangle_mwis(rects, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(result.chosen.empty());
}

TEST(DeadlineSolverTest, FullPipelineThrowsTypedExceptionNeverPartial) {
  const PathInstance inst = hard_instance(16, 13);
  SolverParams params;
  params.deadline = already_expired();
  EXPECT_THROW((void)solve_sap(inst, params), DeadlineExceeded);
}

TEST(DeadlineSolverTest, FullPipelineWithGenerousDeadlineIsDeterministic) {
  const PathInstance inst = hard_instance(16, 17);
  SolverParams plain;
  SolverParams budgeted;
  budgeted.deadline = Deadline::after(std::chrono::hours(1));
  const SapSolution a = solve_sap(inst, plain);
  const SapSolution b = solve_sap(inst, budgeted);
  EXPECT_EQ(a.weight(inst), b.weight(inst));
  EXPECT_EQ(a.placements.size(), b.placements.size());
}

TEST(DeadlineLadderTest, TimedOutRungsFallThroughToTotalWeight) {
  const PathInstance inst = hard_instance(14, 19);
  cert::LadderOptions options;
  options.deadline = already_expired();
  const cert::LadderResult ladder = cert::run_upper_bound_ladder(inst, options);
  // The ladder still proves a bound: total_weight is instant and can never
  // time out, so a deadline degrades the bound rather than losing it.
  ASSERT_TRUE(ladder.proven);
  EXPECT_EQ(ladder.best.rung, cert::UbRung::kTotalWeight);
  bool any_timed_out = false;
  for (const cert::LadderRungAttempt& attempt : ladder.attempts) {
    any_timed_out = any_timed_out || attempt.timed_out;
  }
  EXPECT_TRUE(any_timed_out);
}

}  // namespace
}  // namespace sap
