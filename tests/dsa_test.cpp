// Unit tests for the DSA substrate and the strip transformation.
#include <gtest/gtest.h>

#include <numeric>

#include "src/dsa/dsa.hpp"
#include "src/dsa/skyline.hpp"
#include "src/dsa/strip_transform.hpp"
#include "src/gen/generators.hpp"
#include "src/model/verify.hpp"
#include "src/util/stats.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

TEST(OccupancyIndexTest, LowestFitFindsGaps) {
  const PathInstance inst({100, 100},
                          {Task{0, 1, 2, 1}, Task{0, 1, 3, 1},
                           Task{0, 1, 1, 1}});
  OccupancyIndex index(inst);
  index.add({0, 0});   // occupies [0,2)
  index.add({1, 5});   // occupies [5,8)
  // Demand-1 task fits in the gap [2,5).
  EXPECT_EQ(index.lowest_fit(inst.task(2)), 2);
  // Demand-3 task fits exactly in the gap too.
  EXPECT_EQ(index.lowest_fit(inst.task(1)), 2);
}

TEST(OccupancyIndexTest, BestFitPrefersTightestGap) {
  const PathInstance inst({100},
                          {Task{0, 0, 4, 1}, Task{0, 0, 10, 1},
                           Task{0, 0, 3, 1}});
  OccupancyIndex index(inst);
  index.add({0, 0});    // [0,4)
  index.add({1, 7});    // [7,17)
  // Gap [4,7) has size 3; the top region above 17 is unbounded. Best fit
  // for demand 3 is the exact gap at height 4.
  const auto h = index.best_fit(inst.task(2), 100);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, 4);
}

TEST(OccupancyIndexTest, BestFitRespectsLimit) {
  const PathInstance inst({100}, {Task{0, 0, 5, 1}});
  OccupancyIndex index(inst);
  EXPECT_EQ(index.best_fit(inst.task(0), 5).value(), 0);
  index.add({0, 0});
  EXPECT_FALSE(index.best_fit(inst.task(0), 5).has_value());
}

TEST(OccupancyIndexTest, NonOverlappingTasksShareHeights) {
  const PathInstance inst({100, 100},
                          {Task{0, 0, 4, 1}, Task{1, 1, 4, 1}});
  OccupancyIndex index(inst);
  index.add({0, 0});
  EXPECT_EQ(index.lowest_fit(inst.task(1)), 0);
}

TEST(DsaPackTest, PlacesEveryTaskDisjointly) {
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 12;
    opt.num_tasks = 25;
    opt.min_capacity = 8;
    opt.max_capacity = 32;
    const PathInstance inst = generate_path_instance(opt, rng);
    for (DsaOrder order :
         {DsaOrder::kByLeftEndpoint, DsaOrder::kByDemandDecreasing,
          DsaOrder::kBySpanDecreasing}) {
      for (DsaFit fit : {DsaFit::kFirstFit, DsaFit::kBestFit}) {
        const DsaResult r = dsa_pack(inst, all_ids(inst), {order, fit});
        EXPECT_EQ(r.solution.size(), inst.num_tasks());
        // Vertical disjointness holds even though capacities are ignored.
        EXPECT_TRUE(verify_sap_packable(inst, r.solution, r.makespan));
        EXPECT_GE(r.makespan, r.load);  // makespan can never beat LOAD
      }
    }
  }
}

TEST(DsaPackTest, PortfolioNeverWorseThanSingleEngine) {
  Rng rng(59);
  PathGenOptions opt;
  opt.num_edges = 10;
  opt.num_tasks = 30;
  const PathInstance inst = generate_path_instance(opt, rng);
  const DsaResult portfolio = dsa_pack_portfolio(inst, all_ids(inst));
  const DsaResult single = dsa_pack(inst, all_ids(inst), {});
  EXPECT_LE(portfolio.makespan, single.makespan);
}

TEST(DsaPackTest, DisjointTasksPackAtLoad) {
  // Non-overlapping tasks: makespan should equal LOAD exactly.
  const PathInstance inst({10, 10, 10},
                          {Task{0, 0, 4, 1}, Task{1, 1, 7, 1},
                           Task{2, 2, 2, 1}});
  const DsaResult r = dsa_pack(inst, all_ids(inst), {});
  EXPECT_EQ(r.makespan, 7);
  EXPECT_EQ(r.load, 7);
}

TEST(StripTransformTest, KeepsEverythingWhenItFits) {
  const PathInstance inst({16, 16},
                          {Task{0, 1, 2, 5}, Task{0, 1, 3, 7},
                           Task{0, 0, 1, 2}});
  const StripTransformResult r =
      strip_transform(inst, UfppSolution{{0, 1, 2}}, 8);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_EQ(r.dropped_weight, 0);
  EXPECT_DOUBLE_EQ(r.retention(), 1.0);
  EXPECT_TRUE(verify_sap_packable(inst, r.solution, 8));
}

TEST(StripTransformTest, WindowDropsOverflowButStaysBounded) {
  // Five demand-2 tasks on one edge, strip of height 6: at most 3 fit.
  const PathInstance inst(
      {32},
      {Task{0, 0, 2, 1}, Task{0, 0, 2, 1}, Task{0, 0, 2, 1},
       Task{0, 0, 2, 10}, Task{0, 0, 2, 1}});
  const StripTransformResult r =
      strip_transform(inst, UfppSolution{{0, 1, 2, 3, 4}}, 6);
  EXPECT_EQ(r.solution.size(), 3u);
  EXPECT_TRUE(verify_sap_packable(inst, r.solution, 6));
  // The heavy task must survive (best window + reinsertion by density).
  bool heavy_kept = false;
  for (const Placement& p : r.solution.placements) {
    if (p.task == 3) heavy_kept = true;
  }
  EXPECT_TRUE(heavy_kept);
}

TEST(StripTransformTest, EmptyInput) {
  const PathInstance inst({8}, {Task{0, 0, 1, 1}});
  const StripTransformResult r = strip_transform(inst, UfppSolution{}, 4);
  EXPECT_TRUE(r.solution.empty());
  EXPECT_DOUBLE_EQ(r.retention(), 1.0);
}

TEST(StripTransformTest, HighRetentionOnSmallTasks) {
  // delta-small workloads with load <= height: the Lemma-4 regime. The
  // transformation should retain well above the (1 - 4*delta) floor.
  Rng rng(61);
  Summary retention;
  for (int trial = 0; trial < 20; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 16;
    opt.num_tasks = 60;
    opt.profile = CapacityProfile::kUniform;
    opt.min_capacity = 64;
    opt.max_capacity = 64;
    opt.demand = DemandClass::kSmall;
    opt.delta = {1, 8};
    const PathInstance inst = generate_path_instance(opt, rng);
    // Build a 32-packable UFPP solution greedily.
    std::vector<Value> load(inst.num_edges(), 0);
    UfppSolution sol;
    for (TaskId j : all_ids(inst)) {
      const Task& t = inst.task(j);
      bool fits = true;
      for (EdgeId e = t.first; e <= t.last && fits; ++e) {
        fits = load[static_cast<std::size_t>(e)] + t.demand <= 32;
      }
      if (!fits) continue;
      for (EdgeId e = t.first; e <= t.last; ++e) {
        load[static_cast<std::size_t>(e)] += t.demand;
      }
      sol.tasks.push_back(j);
    }
    const StripTransformResult r = strip_transform(inst, sol, 32);
    EXPECT_TRUE(verify_sap_packable(inst, r.solution, 32));
    retention.add(r.retention());
    // 1 - 4*delta = 0.5 with delta = 1/8.
    EXPECT_GE(r.retention(), 0.5);
  }
  EXPECT_GE(retention.mean(), 0.9);
}

}  // namespace
}  // namespace sap
