// Tests certifying the paper's hand instances (Figures 1, 2, 8).
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/rectangles.hpp"
#include "src/exact/profile_dp.hpp"
#include "src/gen/paper_instances.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

std::vector<TaskId> all_ids(const PathInstance& inst) {
  std::vector<TaskId> ids(inst.num_tasks());
  std::iota(ids.begin(), ids.end(), TaskId{0});
  return ids;
}

TEST(Fig1aTest, UfppFeasibleButSapMustDropATask) {
  const PathInstance inst = fig1a_instance();
  // The full set is a feasible UFPP solution...
  EXPECT_TRUE(verify_ufpp(inst, UfppSolution{all_ids(inst)}));
  // ...but the SAP optimum keeps only one of the two tasks.
  const SapExactResult opt = sap_exact_profile_dp(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_EQ(opt.weight, 1);
  EXPECT_LT(opt.weight, inst.total_weight());
}

TEST(Fig1bTest, UniformCapacityGapInstanceExists) {
  const PathInstance inst = fig1b_instance();
  // Uniform capacities (the figure's defining constraint).
  EXPECT_EQ(inst.min_capacity(), inst.max_capacity());
  EXPECT_TRUE(verify_ufpp(inst, UfppSolution{all_ids(inst)}));
  const SapExactResult opt = sap_exact_profile_dp(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_LT(opt.weight, inst.total_weight());
}

TEST(Fig8Test, OddCycleWitnessCertified) {
  const OddCycleWitness& witness = fig8_instance();
  const PathInstance& inst = witness.instance;
  ASSERT_EQ(inst.num_tasks(), 5u);
  // Every task is 1/2-large.
  for (TaskId j : all_ids(inst)) {
    EXPECT_TRUE(inst.is_large(j, Ratio{1, 2}));
  }
  // The stored solution contains all five tasks and is feasible.
  EXPECT_EQ(witness.solution.size(), 5u);
  EXPECT_TRUE(verify_sap(inst, witness.solution));
  // The anchored rectangles need 3 colors: the graph is exactly a 5-cycle
  // (triangle-free by Lemma 16, non-bipartite by construction).
  const auto rects = task_rectangles(inst, all_ids(inst));
  int edges = 0;
  for (std::size_t a = 0; a < rects.size(); ++a) {
    int degree = 0;
    for (std::size_t b = 0; b < rects.size(); ++b) {
      if (a != b && rects[a].intersects(rects[b])) ++degree;
    }
    EXPECT_EQ(degree, 2);
    edges += degree;
  }
  EXPECT_EQ(edges, 10);  // 5 undirected edges
  const ColoringResult coloring = smallest_last_coloring(rects);
  EXPECT_EQ(coloring.num_colors, 3);
  EXPECT_EQ(coloring.degeneracy, 2);
}

}  // namespace
}  // namespace sap
