// Tests for the plain-text instance/solution (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/generators.hpp"
#include "src/io/instance_io.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

TEST(InstanceIoTest, PathRoundTrip) {
  Rng rng(271);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    const PathInstance inst = generate_path_instance(opt, rng);
    const PathInstance back = path_instance_from_string(to_string(inst));
    ASSERT_EQ(back.num_edges(), inst.num_edges());
    ASSERT_EQ(back.num_tasks(), inst.num_tasks());
    EXPECT_EQ(back.capacities(), inst.capacities());
    EXPECT_EQ(back.tasks(), inst.tasks());
  }
}

TEST(InstanceIoTest, RingRoundTrip) {
  Rng rng(277);
  RingGenOptions opt;
  opt.num_edges = 8;
  opt.num_tasks = 10;
  const RingInstance ring = generate_ring_instance(opt, rng);
  std::stringstream buffer;
  write_ring_instance(buffer, ring);
  const RingInstance back = read_ring_instance(buffer);
  ASSERT_EQ(back.num_edges(), ring.num_edges());
  ASSERT_EQ(back.num_tasks(), ring.num_tasks());
  EXPECT_EQ(back.capacities(), ring.capacities());
  for (std::size_t j = 0; j < ring.num_tasks(); ++j) {
    EXPECT_EQ(back.task(static_cast<TaskId>(j)).start,
              ring.task(static_cast<TaskId>(j)).start);
    EXPECT_EQ(back.task(static_cast<TaskId>(j)).demand,
              ring.task(static_cast<TaskId>(j)).demand);
  }
}

TEST(InstanceIoTest, SolutionRoundTrip) {
  const SapSolution sol{{{3, 0}, {1, 7}, {0, 2}}};
  std::stringstream buffer;
  write_sap_solution(buffer, sol);
  const SapSolution back = read_sap_solution(buffer);
  EXPECT_EQ(back.placements, sol.placements);
}

TEST(InstanceIoTest, CommentsAndWhitespaceTolerated) {
  const std::string text = R"(# a header comment
sap-path v1
edges 2
# capacities follow
capacities 4    8
tasks 1
0 1 2 5
)";
  const PathInstance inst = path_instance_from_string(text);
  EXPECT_EQ(inst.num_edges(), 2u);
  EXPECT_EQ(inst.task(0).weight, 5);
}

TEST(InstanceIoTest, RejectsMalformedInput) {
  EXPECT_THROW(path_instance_from_string(""), std::invalid_argument);
  EXPECT_THROW(path_instance_from_string("sap-ring v1"),
               std::invalid_argument);
  EXPECT_THROW(path_instance_from_string("sap-path v2"),
               std::invalid_argument);
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges x\n"),
      std::invalid_argument);
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges 1\ncapacities 4\n"
                                "tasks 1\n0 0 2\n"),
      std::invalid_argument);  // truncated task line
  // Structural validation still applies after parsing.
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges 1\ncapacities 4\n"
                                "tasks 1\n0 0 9 1\n"),
      std::invalid_argument);  // demand exceeds bottleneck
}

}  // namespace
}  // namespace sap
