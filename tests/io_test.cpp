// Tests for the plain-text instance/solution (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/gen/generators.hpp"
#include "src/io/instance_io.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

TEST(InstanceIoTest, PathRoundTrip) {
  Rng rng(271);
  for (int trial = 0; trial < 10; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 12;
    const PathInstance inst = generate_path_instance(opt, rng);
    const PathInstance back = path_instance_from_string(to_string(inst));
    ASSERT_EQ(back.num_edges(), inst.num_edges());
    ASSERT_EQ(back.num_tasks(), inst.num_tasks());
    EXPECT_EQ(back.capacities(), inst.capacities());
    EXPECT_EQ(back.tasks(), inst.tasks());
  }
}

TEST(InstanceIoTest, RingRoundTrip) {
  Rng rng(277);
  RingGenOptions opt;
  opt.num_edges = 8;
  opt.num_tasks = 10;
  const RingInstance ring = generate_ring_instance(opt, rng);
  std::stringstream buffer;
  write_ring_instance(buffer, ring);
  const RingInstance back = read_ring_instance(buffer);
  ASSERT_EQ(back.num_edges(), ring.num_edges());
  ASSERT_EQ(back.num_tasks(), ring.num_tasks());
  EXPECT_EQ(back.capacities(), ring.capacities());
  for (std::size_t j = 0; j < ring.num_tasks(); ++j) {
    EXPECT_EQ(back.task(static_cast<TaskId>(j)).start,
              ring.task(static_cast<TaskId>(j)).start);
    EXPECT_EQ(back.task(static_cast<TaskId>(j)).demand,
              ring.task(static_cast<TaskId>(j)).demand);
  }
}

TEST(InstanceIoTest, SolutionRoundTrip) {
  const SapSolution sol{{{3, 0}, {1, 7}, {0, 2}}};
  std::stringstream buffer;
  write_sap_solution(buffer, sol);
  const SapSolution back = read_sap_solution(buffer);
  EXPECT_EQ(back.placements, sol.placements);
}

TEST(InstanceIoTest, CommentsAndWhitespaceTolerated) {
  const std::string text = R"(# a header comment
sap-path v1
edges 2
# capacities follow
capacities 4    8
tasks 1
0 1 2 5
)";
  const PathInstance inst = path_instance_from_string(text);
  EXPECT_EQ(inst.num_edges(), 2u);
  EXPECT_EQ(inst.task(0).weight, 5);
}

TEST(InstanceIoTest, RingSolutionRoundTrip) {
  const RingSapSolution sol{{{2, 0, true}, {0, 5, false}, {1, 3, true}}};
  std::stringstream buffer;
  write_ring_solution(buffer, sol);
  const RingSapSolution back = read_ring_solution(buffer);
  ASSERT_EQ(back.placements.size(), sol.placements.size());
  for (std::size_t i = 0; i < sol.placements.size(); ++i) {
    EXPECT_EQ(back.placements[i].task, sol.placements[i].task);
    EXPECT_EQ(back.placements[i].height, sol.placements[i].height);
    EXPECT_EQ(back.placements[i].clockwise, sol.placements[i].clockwise);
  }
}

TEST(InstanceIoTest, ErrorsCarryLineNumbers) {
  try {
    path_instance_from_string(
        "sap-path v1\nedges 2\ncapacities 4 8\ntasks 1\n0 1 oops 5\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 5"), std::string::npos)
        << error.what();
  }
  try {
    path_instance_from_string("sap-path v1\nedges x\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(InstanceIoTest, CountsCheckedAgainstLimitsBeforeAllocation) {
  ReadLimits limits;
  limits.max_tasks = 2;
  const std::string text =
      "sap-path v1\nedges 1\ncapacities 9\ntasks 3\n"
      "0 0 1 1\n0 0 1 1\n0 0 1 1\n";
  std::istringstream over(text);
  try {
    (void)read_path_instance(over, limits);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("exceeds limit"),
              std::string::npos)
        << error.what();
  }
  std::istringstream under(text);
  limits.max_tasks = 3;
  EXPECT_EQ(read_path_instance(under, limits).num_tasks(), 3u);
}

TEST(InstanceIoTest, OverflowingAndNegativeCountsRejected) {
  // A count that overflows int64 must be rejected, not wrapped.
  EXPECT_THROW(path_instance_from_string(
                   "sap-path v1\nedges 99999999999999999999999999\n"),
               std::invalid_argument);
  EXPECT_THROW(path_instance_from_string("sap-path v1\nedges -1\n"),
               std::invalid_argument);
  // An edge index outside EdgeId's 32-bit range must be rejected, not
  // silently narrowed.
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges 1\ncapacities 9\n"
                                "tasks 1\n0 4294967296 1 1\n"),
      std::invalid_argument);
}

TEST(InstanceIoTest, RejectsMalformedInput) {
  EXPECT_THROW(path_instance_from_string(""), std::invalid_argument);
  EXPECT_THROW(path_instance_from_string("sap-ring v1"),
               std::invalid_argument);
  EXPECT_THROW(path_instance_from_string("sap-path v2"),
               std::invalid_argument);
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges x\n"),
      std::invalid_argument);
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges 1\ncapacities 4\n"
                                "tasks 1\n0 0 2\n"),
      std::invalid_argument);  // truncated task line
  // Structural validation still applies after parsing.
  EXPECT_THROW(
      path_instance_from_string("sap-path v1\nedges 1\ncapacities 4\n"
                                "tasks 1\n0 0 9 1\n"),
      std::invalid_argument);  // demand exceeds bottleneck
}

cert::Certificate certificate_from_string(const std::string& text,
                                          const ReadLimits& limits = {}) {
  std::istringstream is(text);
  return read_certificate(is, limits);
}

TEST(InstanceIoTest, CertificateRoundTrip) {
  cert::Certificate cert;
  cert.kind = cert::Certificate::Kind::kRing;
  cert.solution_weight = 41;
  cert.ub.rung = cert::UbRung::kLpDual;
  cert.ub.value = 97;
  cert.alpha_num = 97;
  cert.alpha_den = 41;
  cert.ub.dual.scale = 1 << 20;
  cert.ub.dual.edge_price = {0, 5, 1048576, 3};
  std::stringstream ss;
  write_certificate(ss, cert);
  const cert::Certificate back = read_certificate(ss);
  EXPECT_EQ(back.kind, cert.kind);
  EXPECT_EQ(back.solution_weight, cert.solution_weight);
  EXPECT_EQ(back.ub.rung, cert.ub.rung);
  EXPECT_EQ(back.ub.value, cert.ub.value);
  EXPECT_EQ(back.alpha_num, cert.alpha_num);
  EXPECT_EQ(back.alpha_den, cert.alpha_den);
  EXPECT_EQ(back.ub.dual.scale, cert.ub.dual.scale);
  EXPECT_EQ(back.ub.dual.edge_price, cert.ub.dual.edge_price);
}

TEST(InstanceIoTest, CertificateWithoutPricesRoundTrips) {
  cert::Certificate cert;
  cert.solution_weight = 7;
  cert.ub.rung = cert::UbRung::kExactDp;
  cert.ub.value = 7;
  std::stringstream ss;
  write_certificate(ss, cert);
  const cert::Certificate back = read_certificate(ss);
  EXPECT_EQ(back.kind, cert::Certificate::Kind::kPath);
  EXPECT_EQ(back.ub.rung, cert::UbRung::kExactDp);
  EXPECT_TRUE(back.ub.dual.empty());
}

TEST(InstanceIoTest, HostileCertificatesRejected) {
  // Wrong magic / version.
  EXPECT_THROW(certificate_from_string("sap-path v1\n"),
               std::invalid_argument);
  EXPECT_THROW(certificate_from_string("sap-cert v2\n"),
               std::invalid_argument);
  // Unknown kind and unknown rung name.
  EXPECT_THROW(certificate_from_string("sap-cert v1\nkind tree\n"),
               std::invalid_argument);
  EXPECT_THROW(
      certificate_from_string("sap-cert v1\nkind path\nweight 1\n"
                              "rung psychic\n"),
      std::invalid_argument);
  // Price count over the read limit is rejected before allocation.
  ReadLimits tight;
  tight.max_edges = 4;
  EXPECT_THROW(
      certificate_from_string("sap-cert v1\nkind path\nweight 1\n"
                              "rung lp_dual\nub 2\nalpha 2 1\n"
                              "prices 1 5\n0 0 0 0 0\nend\n",
                              tight),
      std::invalid_argument);
  // Negative and overflowing counts.
  EXPECT_THROW(
      certificate_from_string("sap-cert v1\nkind path\nweight 1\n"
                              "rung lp_dual\nub 2\nalpha 2 1\n"
                              "prices 1 -1\nend\n"),
      std::invalid_argument);
  EXPECT_THROW(
      certificate_from_string("sap-cert v1\nkind path\nweight 1\n"
                              "rung lp_dual\nub 2\nalpha 2 1\n"
                              "prices 1 99999999999999999999\nend\n"),
      std::invalid_argument);
  // Truncated: missing the "end" terminator.
  EXPECT_THROW(
      certificate_from_string("sap-cert v1\nkind path\nweight 1\n"
                              "rung total_weight\nub 2\nalpha 2 1\n"
                              "prices 1 0\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace sap
