// Randomized cross-validation fuzz for the low-level substrates: the
// occupancy index vs a naive reference, the simplex solver vs exhaustive
// vertex enumeration on tiny LPs, and serialization fuzz (parse errors must
// be exceptions, never crashes or silent misparses).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/dsa/skyline.hpp"
#include "src/io/instance_io.hpp"
#include "src/lp/simplex.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

// ----------------------------------------------------------- occupancy --

/// Naive lowest-fit: try every height from 0 upward (bounded domain).
Value naive_lowest_fit(const PathInstance& inst,
                       const std::vector<Placement>& placed, const Task& t,
                       Value limit) {
  for (Value h = 0; h <= limit; ++h) {
    bool free = true;
    for (const Placement& p : placed) {
      const Task& other = inst.task(p.task);
      if (!t.overlaps(other)) continue;
      if (h < p.height + other.demand && p.height < h + t.demand) {
        free = false;
        break;
      }
    }
    if (free) return h;
  }
  return limit + 1;
}

TEST(OccupancyFuzzTest, LowestFitMatchesNaive) {
  Rng rng(467);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = static_cast<EdgeId>(rng.uniform_int(1, 6));
    std::vector<Task> tasks;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      const auto first = static_cast<EdgeId>(rng.uniform_int(0, m - 1));
      const auto last = static_cast<EdgeId>(rng.uniform_int(first, m - 1));
      tasks.push_back({first, last, rng.uniform_int(1, 5), 1});
    }
    const PathInstance inst(
        std::vector<Value>(static_cast<std::size_t>(m), 1000), tasks);
    OccupancyIndex index(inst);
    std::vector<Placement> placed;
    for (int i = 0; i < n; ++i) {
      const auto id = static_cast<TaskId>(i);
      const Value expected =
          naive_lowest_fit(inst, placed, inst.task(id), 200);
      const Value actual = index.lowest_fit(inst.task(id));
      ASSERT_EQ(actual, expected) << "trial " << trial << " task " << i;
      index.add({id, actual});
      placed.push_back({id, actual});
    }
  }
}

TEST(OccupancyFuzzTest, BestFitReturnsFreeFeasiblePositions) {
  Rng rng(479);
  for (int trial = 0; trial < 30; ++trial) {
    const PathInstance inst(
        {1000, 1000},
        {Task{0, 1, rng.uniform_int(1, 6), 1}, Task{0, 1, 3, 1},
         Task{0, 1, 2, 1}, Task{0, 0, 4, 1}, Task{1, 1, 5, 1}});
    OccupancyIndex index(inst);
    std::vector<Placement> placed;
    for (TaskId id = 0; id < 5; ++id) {
      const Value limit = rng.uniform_int(6, 30);
      const auto h = index.best_fit(inst.task(id), limit);
      if (!h.has_value()) continue;
      // Returned position must be free and under the limit.
      EXPECT_LE(*h + inst.task(id).demand, limit);
      for (const Placement& p : placed) {
        const Task& other = inst.task(p.task);
        if (!inst.task(id).overlaps(other)) continue;
        EXPECT_FALSE(*h < p.height + other.demand &&
                     p.height < *h + inst.task(id).demand);
      }
      index.add({id, *h});
      placed.push_back({id, *h});
    }
  }
}

// ------------------------------------------------------------- simplex --

/// Exhaustive reference for tiny LPs: evaluate every vertex (intersection
/// of n active constraints among rows and axes) and keep the best feasible.
double brute_force_lp_2d(const LpProblem& lp) {
  // Candidate points: intersections of pairs drawn from constraint lines
  // and the two axes, clipped to feasibility.
  struct Line {
    double a, b, c;  // a x + b y = c
  };
  std::vector<Line> lines{{1, 0, 0}, {0, 1, 0}};  // axes
  for (const LpConstraint& con : lp.constraints) {
    lines.push_back({con.coeffs[0],
                     con.coeffs.size() > 1 ? con.coeffs[1] : 0.0, con.rhs});
  }
  auto feasible = [&](double x, double y) {
    if (x < -1e-9 || y < -1e-9) return false;
    for (const LpConstraint& con : lp.constraints) {
      const double lhs =
          con.coeffs[0] * x +
          (con.coeffs.size() > 1 ? con.coeffs[1] : 0.0) * y;
      if (lhs > con.rhs + 1e-7) return false;
    }
    return true;
  };
  double best = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det =
          lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x =
          (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y =
          (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (!feasible(x, y)) continue;
      best = std::max(best, lp.objective[0] * x + lp.objective[1] * y);
    }
  }
  return best;
}

TEST(SimplexFuzzTest, MatchesVertexEnumerationOn2dProblems) {
  Rng rng(487);
  for (int trial = 0; trial < 60; ++trial) {
    LpProblem lp;
    lp.objective = {static_cast<double>(rng.uniform_int(0, 10)),
                    static_cast<double>(rng.uniform_int(0, 10))};
    const int rows = static_cast<int>(rng.uniform_int(1, 5));
    bool bounded_x = false;
    bool bounded_y = false;
    for (int r = 0; r < rows; ++r) {
      LpConstraint con;
      con.coeffs = {static_cast<double>(rng.uniform_int(0, 6)),
                    static_cast<double>(rng.uniform_int(0, 6))};
      con.rhs = static_cast<double>(rng.uniform_int(1, 30));
      bounded_x |= con.coeffs[0] > 0;
      bounded_y |= con.coeffs[1] > 0;
      lp.constraints.push_back(std::move(con));
    }
    // Ensure boundedness so the comparison is meaningful.
    if (!bounded_x) lp.constraints.push_back({{1, 0}, LpRelation::kLessEqual, 20});
    if (!bounded_y) lp.constraints.push_back({{0, 1}, LpRelation::kLessEqual, 20});
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;
    const double reference = brute_force_lp_2d(lp);
    EXPECT_NEAR(sol.objective, reference, 1e-5) << "trial " << trial;
  }
}

// Differential check of the two pricing rules: Dantzig (the default, whose
// pivot path the golden fixtures lock) vs steepest-edge (the bound-loop
// rule). They walk different pivot sequences but must reach the same
// optimum and agree on infeasibility; mixed relations and negative rhs
// exercise phase 1 (artificials) under both rules.
TEST(SimplexFuzzTest, SteepestEdgeAgreesWithDantzigOnRandomLps) {
  Rng rng(499);
  int optimal_pairs = 0;
  int infeasible_pairs = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const int rows = static_cast<int>(rng.uniform_int(1, 8));
    LpProblem lp;
    lp.objective.resize(static_cast<std::size_t>(n));
    for (double& w : lp.objective) {
      w = static_cast<double>(rng.uniform_int(0, 9));
    }
    for (int r = 0; r < rows; ++r) {
      LpConstraint con;
      con.coeffs.resize(static_cast<std::size_t>(n));
      for (double& c : con.coeffs) {
        c = static_cast<double>(rng.uniform_int(-3, 6));
      }
      const std::int64_t roll = rng.uniform_int(0, 9);
      con.relation = roll <= 6   ? LpRelation::kLessEqual
                     : roll <= 8 ? LpRelation::kGreaterEqual
                                 : LpRelation::kEqual;
      con.rhs = static_cast<double>(rng.uniform_int(-10, 30));
      lp.constraints.push_back(std::move(con));
    }
    // Box every variable so kUnbounded is impossible and the comparison is
    // always kOptimal vs kOptimal or kInfeasible vs kInfeasible.
    for (int v = 0; v < n; ++v) {
      LpConstraint box;
      box.coeffs.assign(static_cast<std::size_t>(n), 0.0);
      box.coeffs[static_cast<std::size_t>(v)] = 1.0;
      box.rhs = 12.0;
      lp.constraints.push_back(std::move(box));
    }

    const LpSolution dantzig = solve_lp(lp);
    LpOptions options;
    options.pricing = LpPricing::kSteepestEdge;
    const LpSolution steepest = solve_lp(lp, options);
    ASSERT_EQ(dantzig.status, steepest.status) << "trial " << trial;
    if (dantzig.status == LpStatus::kInfeasible) {
      ++infeasible_pairs;
      continue;
    }
    ASSERT_EQ(dantzig.status, LpStatus::kOptimal) << "trial " << trial;
    ++optimal_pairs;
    EXPECT_NEAR(dantzig.objective, steepest.objective, 1e-5)
        << "trial " << trial;
    // The steepest-edge vertex must satisfy every constraint (its x can
    // legitimately differ from Dantzig's on degenerate optima).
    ASSERT_EQ(steepest.x.size(), static_cast<std::size_t>(n));
    for (std::size_t r = 0; r < lp.constraints.size(); ++r) {
      const LpConstraint& con = lp.constraints[r];
      double lhs = 0.0;
      for (std::size_t c = 0; c < con.coeffs.size(); ++c) {
        lhs += con.coeffs[c] * steepest.x[c];
      }
      switch (con.relation) {
        case LpRelation::kLessEqual:
          EXPECT_LE(lhs, con.rhs + 1e-6) << "trial " << trial << " row " << r;
          break;
        case LpRelation::kGreaterEqual:
          EXPECT_GE(lhs, con.rhs - 1e-6) << "trial " << trial << " row " << r;
          break;
        case LpRelation::kEqual:
          EXPECT_NEAR(lhs, con.rhs, 1e-6) << "trial " << trial << " row " << r;
          break;
      }
    }
  }
  // The family must actually exercise both outcomes.
  EXPECT_GT(optimal_pairs, 50);
  EXPECT_GT(infeasible_pairs, 10);
}

// ------------------------------------------------------------------ io --

TEST(IoFuzzTest, MutatedInputsNeverCrash) {
  const std::string good =
      "sap-path v1\nedges 3\ncapacities 4 8 4\ntasks 2\n0 1 2 5\n1 2 3 7\n";
  Rng rng(491);
  int parsed = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      const char replacement =
          "0123456789 ax-\n"[rng.uniform_int(0, 14)];
      mutated[pos] = replacement;
    }
    try {
      const PathInstance inst = path_instance_from_string(mutated);
      ++parsed;  // survived mutation: must still be structurally valid
      EXPECT_GT(inst.num_edges(), 0u);
    } catch (const std::invalid_argument&) {
      // expected for most mutations
    } catch (const std::out_of_range&) {
      // stoll overflow on digit-extended tokens: acceptable rejection
    }
  }
  // Some mutations (e.g. weight digit changes) must still parse.
  EXPECT_GT(parsed, 0);
}

}  // namespace
}  // namespace sap
