// Unit tests for src/model: instances, solutions, loads, verifiers.
#include <gtest/gtest.h>

#include <numeric>

#include "src/gen/paper_instances.hpp"
#include "src/model/path_instance.hpp"
#include "src/model/solution.hpp"
#include "src/model/verify.hpp"

namespace sap {
namespace {

PathInstance tiny() {
  // caps:   4 6 6 4
  // task 0: [0,1] d=2, task 1: [1,3] d=3, task 2: [2,2] d=6
  return PathInstance({4, 6, 6, 4},
                      {Task{0, 1, 2, 10}, Task{1, 3, 3, 20},
                       Task{2, 2, 6, 5}});
}

TEST(TaskTest, OverlapAndUses) {
  const Task a{0, 2, 1, 1};
  const Task b{2, 4, 1, 1};
  const Task c{3, 5, 1, 1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.uses(0));
  EXPECT_TRUE(a.uses(2));
  EXPECT_FALSE(a.uses(3));
  EXPECT_EQ(a.span(), 3);
}

TEST(RatioTest, ExactComparisons) {
  const Ratio quarter{1, 4};
  EXPECT_TRUE(quarter.le_scaled(1, 4));    // 1 <= 4/4
  EXPECT_FALSE(quarter.le_scaled(2, 7));   // 2 > 7/4
  EXPECT_TRUE(quarter.lt_scaled(1, 5));    // 1 < 5/4
  EXPECT_FALSE(quarter.lt_scaled(1, 4));   // 1 == 4/4
}

TEST(PathInstanceTest, BottlenecksUseRangeMinimum) {
  const PathInstance inst = tiny();
  EXPECT_EQ(inst.bottleneck(0), 4);  // min(4,6)
  EXPECT_EQ(inst.bottleneck(1), 4);  // min(6,6,4)
  EXPECT_EQ(inst.bottleneck(2), 6);
  EXPECT_EQ(inst.bottleneck_edge(0), 0);
  EXPECT_EQ(inst.bottleneck_edge(1), 3);
  EXPECT_EQ(inst.min_capacity(), 4);
  EXPECT_EQ(inst.max_capacity(), 6);
  EXPECT_EQ(inst.total_weight(), 35);
}

TEST(PathInstanceTest, RejectsInvalidInput) {
  EXPECT_THROW(PathInstance({}, {}), std::invalid_argument);
  EXPECT_THROW(PathInstance({0}, {}), std::invalid_argument);
  EXPECT_THROW(PathInstance({4}, {Task{0, 1, 1, 1}}), std::invalid_argument);
  EXPECT_THROW(PathInstance({4}, {Task{0, 0, 0, 1}}), std::invalid_argument);
  EXPECT_THROW(PathInstance({4}, {Task{0, 0, 1, -1}}), std::invalid_argument);
  // Demand above bottleneck is rejected outright.
  EXPECT_THROW(PathInstance({4, 2}, {Task{0, 1, 3, 1}}),
               std::invalid_argument);
}

TEST(PathInstanceTest, SmallLargeClassification) {
  const PathInstance inst = tiny();
  const Ratio half{1, 2};
  EXPECT_TRUE(inst.is_small(0, half));   // 2 <= 4/2
  EXPECT_FALSE(inst.is_small(1, half));  // 3 > 4/2
  EXPECT_TRUE(inst.is_large(2, half));   // 6 > 6/2
}

TEST(PathInstanceTest, RestrictTasksKeepsMapping) {
  const PathInstance inst = tiny();
  const std::vector<TaskId> subset{2, 0};
  const auto [sub, back] = inst.restrict_tasks(subset);
  ASSERT_EQ(sub.num_tasks(), 2u);
  EXPECT_EQ(back[0], 2);
  EXPECT_EQ(back[1], 0);
  EXPECT_EQ(sub.task(0).demand, 6);
  EXPECT_EQ(sub.task(1).demand, 2);
}

TEST(PathInstanceTest, ClampCapacitiesDropsOversizedTasks) {
  const PathInstance inst = tiny();
  std::vector<TaskId> all(inst.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  const auto [sub, back] = inst.clamp_capacities(5, all);
  EXPECT_EQ(sub.capacity(1), 5);
  EXPECT_EQ(sub.capacity(0), 4);
  // Task 2 (d = 6) no longer fits anywhere and is dropped.
  ASSERT_EQ(sub.num_tasks(), 2u);
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[1], 1);
}

TEST(SolutionTest, LoadsAndMakespans) {
  const PathInstance inst = tiny();
  const std::vector<TaskId> all{0, 1, 2};
  const auto loads = edge_loads(inst, all);
  EXPECT_EQ(loads, (std::vector<Value>{2, 5, 9, 3}));
  EXPECT_EQ(max_load(inst, all), 9);

  SapSolution sol{{{0, 0}, {1, 2}}};
  const auto mk = edge_makespans(inst, sol);
  EXPECT_EQ(mk, (std::vector<Value>{2, 5, 5, 5}));
  EXPECT_EQ(max_makespan(inst, sol), 5);
  EXPECT_EQ(sol.weight(inst), 30);
  sol.lift(3);
  EXPECT_EQ(sol.placements[0].height, 3);
  EXPECT_EQ(max_makespan(inst, sol), 8);
}

TEST(VerifyUfppTest, AcceptsFeasibleRejectsOverload) {
  const PathInstance inst = tiny();
  EXPECT_TRUE(verify_ufpp(inst, {{0, 1}}));
  // All three tasks overload edge 2: 3 + 6 = 9 > 6.
  EXPECT_FALSE(verify_ufpp(inst, {{0, 1, 2}}));
  EXPECT_FALSE(verify_ufpp(inst, {{0, 0}}));   // duplicate
  EXPECT_FALSE(verify_ufpp(inst, {{7}}));      // out of range
  EXPECT_TRUE(verify_ufpp_packable(inst, {{0, 1}}, 5));
  EXPECT_FALSE(verify_ufpp_packable(inst, {{0, 1}}, 4));
}

TEST(VerifySapTest, DetectsVerticalOverlap) {
  const PathInstance inst({8, 8}, {Task{0, 1, 2, 1}, Task{0, 1, 3, 1}});
  // Heights 0 and 2 are vertically disjoint.
  EXPECT_TRUE(verify_sap(inst, SapSolution{{{0, 0}, {1, 2}}}));
  // Heights 0 and 1 overlap vertically ([0,2) vs [1,4)).
  const auto bad = verify_sap(inst, SapSolution{{{0, 0}, {1, 1}}});
  EXPECT_FALSE(bad);
  EXPECT_NE(bad.reason.find("overlap"), std::string::npos);
}

TEST(VerifySapTest, DetectsCapacityViolationAtBottleneck) {
  const PathInstance inst = tiny();
  // Task 1 has bottleneck 4 (edge 3): height 2 is fine, height 2+3 > 4 not.
  EXPECT_TRUE(verify_sap(inst, SapSolution{{{1, 1}}}));
  EXPECT_FALSE(verify_sap(inst, SapSolution{{{1, 2}}}));
  EXPECT_FALSE(verify_sap(inst, SapSolution{{{0, -1}}}));
}

TEST(VerifySapTest, NonOverlappingTasksMayShareHeights) {
  const PathInstance inst({4, 4, 4},
                          {Task{0, 0, 3, 1}, Task{2, 2, 3, 1}});
  EXPECT_TRUE(verify_sap(inst, SapSolution{{{0, 0}, {1, 0}}}));
}

TEST(VerifySapTest, PackableBoundIgnoresCapacities) {
  const PathInstance inst = tiny();
  const SapSolution sol{{{0, 0}, {1, 2}}};
  EXPECT_TRUE(verify_sap_packable(inst, sol, 5));
  EXPECT_FALSE(verify_sap_packable(inst, sol, 4));
}

TEST(Fig2Test, AllTasksAreQuarterSmall) {
  const Ratio quarter{1, 4};
  for (const PathInstance& inst : {fig2a_instance(), fig2b_instance()}) {
    for (std::size_t j = 0; j < inst.num_tasks(); ++j) {
      EXPECT_TRUE(inst.is_small(static_cast<TaskId>(j), quarter));
    }
  }
}

}  // namespace
}  // namespace sap
