// Unit tests for src/util/telemetry: per-solve scoping, nesting, isolation
// of concurrent collection, the disabled fast path, and JSON output.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "src/core/sap_solver.hpp"
#include "src/gen/generators.hpp"
#include "src/util/telemetry.hpp"

namespace sap {
namespace {

TEST(TelemetryReportTest, CountersAccumulate) {
  TelemetryReport report;
  report.add_count("a", 2);
  report.add_count("a", 3);
  report.add_count("b", 1);
  EXPECT_EQ(report.count("a"), 5);
  EXPECT_EQ(report.count("b"), 1);
  EXPECT_EQ(report.count("never"), 0);
}

TEST(TelemetryReportTest, TimersAccumulate) {
  TelemetryReport report;
  report.add_time("t", 1, 0.5);
  report.add_time("t", 2, 0.25);
  EXPECT_EQ(report.timer("t").count, 3);
  EXPECT_DOUBLE_EQ(report.timer("t").seconds, 0.75);
  EXPECT_EQ(report.timer("never").count, 0);
}

TEST(TelemetryReportTest, MergeAddsEverything) {
  TelemetryReport a;
  a.add_count("x", 1);
  a.add_time("t", 1, 1.0);
  TelemetryReport b;
  b.add_count("x", 2);
  b.add_count("y", 7);
  b.add_time("t", 1, 0.5);
  a.merge(b);
  EXPECT_EQ(a.count("x"), 3);
  EXPECT_EQ(a.count("y"), 7);
  EXPECT_EQ(a.timer("t").count, 2);
  EXPECT_DOUBLE_EQ(a.timer("t").seconds, 1.5);
}

TEST(TelemetryReportTest, JsonCountersOnlyModeOmitsTimers) {
  TelemetryReport report;
  report.add_count("n", 4);
  report.add_time("t", 1, 0.5);
  std::ostringstream with_timers;
  report.write_json(with_timers, /*include_timers=*/true);
  std::ostringstream counters_only;
  report.write_json(counters_only, /*include_timers=*/false);
  EXPECT_NE(with_timers.str().find("\"timers\""), std::string::npos);
  EXPECT_EQ(counters_only.str().find("\"timers\""), std::string::npos);
  EXPECT_NE(counters_only.str().find("\"n\": 4"), std::string::npos);
}

TEST(TelemetrySessionTest, DisabledPathRecordsNothing) {
  ASSERT_FALSE(telemetry::enabled());
  telemetry::count("ghost", 42);
  { ScopedTimer timer("ghost.timer"); }
  // Installing a session afterwards must start from a clean slate: nothing
  // recorded above leaks into it.
  TelemetryReport report;
  {
    TelemetrySession session(&report);
    EXPECT_TRUE(telemetry::enabled());
  }
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(telemetry::enabled());
}

TEST(TelemetrySessionTest, CountsScopedToActiveSession) {
  TelemetryReport first;
  TelemetryReport second;
  {
    TelemetrySession session(&first);
    telemetry::count("hits");
  }
  {
    TelemetrySession session(&second);
    telemetry::count("hits", 2);
  }
  telemetry::count("hits", 100);  // no session: dropped
  EXPECT_EQ(first.count("hits"), 1);
  EXPECT_EQ(second.count("hits"), 2);
}

TEST(TelemetrySessionTest, NestedSessionsShadowAndRestore) {
  TelemetryReport outer;
  TelemetryReport inner;
  TelemetrySession outer_session(&outer);
  telemetry::count("n");
  {
    TelemetrySession inner_session(&inner);
    telemetry::count("n", 10);
  }
  telemetry::count("n");
  EXPECT_EQ(outer.count("n"), 2);
  EXPECT_EQ(inner.count("n"), 10);
}

TEST(TelemetrySessionTest, ScopedTimerChargesCapturedSink) {
  TelemetryReport report;
  {
    TelemetrySession session(&report);
    for (int i = 0; i < 3; ++i) {
      ScopedTimer timer("loop");
    }
  }
  EXPECT_EQ(report.timer("loop").count, 3);
  EXPECT_GE(report.timer("loop").seconds, 0.0);
}

TEST(TelemetrySolveTest, PerSolveReportsAreDisjoint) {
  PathGenOptions opt;
  opt.num_edges = 6;
  opt.num_tasks = 8;
  opt.max_capacity = 12;
  Rng rng(19);
  const PathInstance a = generate_path_instance(opt, rng);
  const PathInstance b = generate_path_instance(opt, rng);

  TelemetryReport ra;
  TelemetryReport rb;
  {
    TelemetrySession session(&ra);
    (void)solve_sap(a);
  }
  {
    TelemetrySession session(&rb);
    (void)solve_sap(b);
  }
  for (const TelemetryReport* r : {&ra, &rb}) {
    EXPECT_EQ(r->timer("sap.solve").count, 1);
    EXPECT_EQ(r->count("sap.winner.small") + r->count("sap.winner.medium") +
                  r->count("sap.winner.large"),
              1);
  }
  EXPECT_EQ(ra.count("sap.tasks.small") + ra.count("sap.tasks.medium") +
                ra.count("sap.tasks.large"),
            static_cast<std::int64_t>(a.num_tasks()));
}

TEST(TelemetryAllocTest, WarmSolveAcquiresNoNewArenaChunks) {
  // The arena counters fire only on the slow paths (heap chunk acquisition,
  // spare-list reuse), so they directly observe the allocation contract: a
  // cold solve may grow the thread arena, but a warm repeat of the same
  // solve must run entirely out of the recycled footprint. Run on a fresh
  // thread so the thread-local arena is guaranteed cold at the first solve.
  PathGenOptions opt;
  opt.num_edges = 8;
  opt.num_tasks = 14;
  opt.max_capacity = 16;
  Rng rng(77);
  const PathInstance inst = generate_path_instance(opt, rng);

  TelemetryReport cold;
  TelemetryReport warm;
  std::thread worker([&] {
    {
      TelemetrySession session(&cold);
      (void)solve_sap(inst);
    }
    {
      TelemetrySession session(&warm);
      (void)solve_sap(inst);
    }
  });
  worker.join();

  EXPECT_GT(cold.count("alloc.arena.chunks"), 0);
  EXPECT_GT(cold.count("alloc.arena.chunk_bytes"), 0);
  // Geometric chunk growth keeps the heap trip count logarithmic in the
  // footprint; a solve this size must stay far under this ceiling.
  EXPECT_LE(cold.count("alloc.arena.chunks"), 32);

  EXPECT_EQ(warm.count("alloc.arena.chunks"), 0);
  EXPECT_EQ(warm.count("alloc.arena.chunk_bytes"), 0);
}

TEST(TelemetrySolveTest, ConcurrentSolvesDoNotBleed) {
  // Each thread installs its own session and solves its own instance; every
  // report must describe exactly one solve of the right size.
  constexpr int kThreads = 4;
  std::vector<TelemetryReport> reports(kThreads);
  std::vector<PathInstance> instances;
  for (int i = 0; i < kThreads; ++i) {
    PathGenOptions opt;
    opt.num_edges = 6;
    opt.num_tasks = static_cast<std::size_t>(6 + 2 * i);
    opt.max_capacity = 12;
    Rng rng(100 + static_cast<std::uint64_t>(i));
    instances.push_back(generate_path_instance(opt, rng));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int repeat = 0; repeat < 3; ++repeat) {
        TelemetrySession session(&reports[static_cast<std::size_t>(i)]);
        (void)solve_sap(instances[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    const TelemetryReport& r = reports[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.timer("sap.solve").count, 3) << "thread " << i;
    EXPECT_EQ(r.count("sap.tasks.small") + r.count("sap.tasks.medium") +
                  r.count("sap.tasks.large"),
              static_cast<std::int64_t>(
                  3 * instances[static_cast<std::size_t>(i)].num_tasks()))
        << "thread " << i;
  }
}

}  // namespace
}  // namespace sap
