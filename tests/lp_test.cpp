// Unit tests for the simplex solver and the UFPP LP relaxation.
#include <gtest/gtest.h>

#include <numeric>

#include "src/gen/generators.hpp"
#include "src/lp/simplex.hpp"
#include "src/lp/ufpp_lp.hpp"
#include "src/ufpp/branch_and_bound.hpp"

namespace sap {
namespace {

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  LpProblem lp;
  lp.objective = {3, 5};
  lp.constraints = {{{1, 0}, LpRelation::kLessEqual, 4},
                    {{0, 2}, LpRelation::kLessEqual, 12},
                    {{3, 2}, LpRelation::kLessEqual, 18}};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem lp;
  lp.objective = {1, 0};
  lp.constraints = {{{0, 1}, LpRelation::kLessEqual, 5}};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  LpProblem lp;
  lp.objective = {1};
  lp.constraints = {{{1}, LpRelation::kLessEqual, 1},
                    {{1}, LpRelation::kGreaterEqual, 3}};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, HandlesEqualityConstraints) {
  // max x + y s.t. x + y = 3, x <= 2 -> 3 with x in [0,2].
  LpProblem lp;
  lp.objective = {1, 1};
  lp.constraints = {{{1, 1}, LpRelation::kEqual, 3},
                    {{1, 0}, LpRelation::kLessEqual, 2}};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(SimplexTest, HandlesNegativeRhs) {
  // max -x s.t. -x <= -2  (i.e. x >= 2) -> objective -2.
  LpProblem lp;
  lp.objective = {-1};
  lp.constraints = {{{-1}, LpRelation::kLessEqual, -2}};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp;
  lp.objective = {1, 1};
  lp.constraints = {{{1, 0}, LpRelation::kLessEqual, 1},
                    {{0, 1}, LpRelation::kLessEqual, 1},
                    {{1, 1}, LpRelation::kLessEqual, 2},
                    {{2, 2}, LpRelation::kLessEqual, 4}};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(UfppLpTest, RelaxationUpperBoundsKnapsack) {
  // Single edge of capacity 10: LP = fractional knapsack.
  const PathInstance inst({10}, {Task{0, 0, 6, 60}, Task{0, 0, 5, 40},
                                 Task{0, 0, 5, 40}});
  const double bound = ufpp_lp_upper_bound(inst);
  // Fractional: take task 0 fully (60) + 4/5 of one 40 = 92.
  EXPECT_NEAR(bound, 92.0, 1e-6);
}

TEST(UfppLpTest, IntegralWhenCapacityIsLoose) {
  const PathInstance inst({100, 100}, {Task{0, 1, 3, 7}, Task{0, 0, 4, 9}});
  const double bound = ufpp_lp_upper_bound(inst);
  EXPECT_NEAR(bound, 16.0, 1e-6);
}

TEST(UfppLpTest, BoundDominatesExactOptimum) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    PathGenOptions opt;
    opt.num_edges = 8;
    opt.num_tasks = 10;
    opt.min_capacity = 4;
    opt.max_capacity = 16;
    const PathInstance inst = generate_path_instance(opt, rng);
    const UfppExactResult exact = ufpp_exact(inst);
    ASSERT_TRUE(exact.proven_optimal);
    const double lp = ufpp_lp_upper_bound(inst);
    EXPECT_GE(lp + 1e-6, static_cast<double>(exact.weight));
  }
}

TEST(UfppLpTest, SubsetRelaxationIndexesBySubsetPosition) {
  const PathInstance inst({10}, {Task{0, 0, 10, 1}, Task{0, 0, 10, 5}});
  const std::vector<TaskId> subset{1};
  const LpSolution sol = solve_ufpp_relaxation(inst, subset);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  ASSERT_EQ(sol.x.size(), 1u);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
}

}  // namespace
}  // namespace sap
