#include "src/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/util/telemetry.hpp"

namespace sap {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.alloc_array<std::int64_t>(10);
  auto* b = arena.alloc_array<std::int64_t>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::int64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::int64_t), 0u);
  for (int i = 0; i < 10; ++i) a[i] = i;
  for (int i = 0; i < 10; ++i) b[i] = 100 + i;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
}

TEST(ArenaTest, MixedAlignmentsStayAligned) {
  Arena arena;
  for (int round = 0; round < 100; ++round) {
    auto* c = static_cast<char*>(arena.allocate(1, 1));
    *c = 'x';
    auto* d = arena.alloc_array<double>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    auto* i = arena.alloc_array<std::int32_t>(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i) % alignof(std::int32_t), 0u);
  }
}

TEST(ArenaTest, GrowsAcrossChunksAndCountsHeapTraffic) {
  Arena arena;
  const std::int64_t before = arena.chunk_allocations();
  // Allocate well past the default chunk size; every byte must stay usable.
  std::vector<std::int64_t*> blocks;
  for (int i = 0; i < 64; ++i) {
    auto* p = arena.alloc_array<std::int64_t>(4096);  // 32 KiB each
    for (int j = 0; j < 4096; j += 511) p[j] = i * 100000 + j;
    blocks.push_back(p);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    for (int j = 0; j < 4096; j += 511) {
      EXPECT_EQ(blocks[i][j], static_cast<std::int64_t>(i) * 100000 + j);
    }
  }
  const std::int64_t grew = arena.chunk_allocations() - before;
  EXPECT_GT(grew, 0);
  // Geometric growth: 2 MiB total must take far fewer chunks than blocks.
  EXPECT_LT(grew, 16);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{64} * 4096 * 8);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena;
  const std::size_t big = Arena::kDefaultChunkBytes * 8;
  auto* p = static_cast<char*>(arena.allocate(big));
  p[0] = 'a';
  p[big - 1] = 'z';
  EXPECT_EQ(p[0], 'a');
  EXPECT_EQ(p[big - 1], 'z');
}

TEST(ArenaTest, ResetReusesHighWaterChunkWithoutHeapTraffic) {
  Arena arena;
  // Warm up with a large footprint.
  for (int i = 0; i < 32; ++i) (void)arena.alloc_array<std::int64_t>(8192);
  arena.reset();
  const std::int64_t warmed = arena.chunk_allocations();
  // A same-shaped reuse cycle must be heap-free... as long as it fits the
  // retained high-water chunk.
  for (int round = 0; round < 10; ++round) {
    (void)arena.alloc_array<std::int64_t>(4096);
    arena.reset();
  }
  EXPECT_EQ(arena.chunk_allocations(), warmed);
}

TEST(ArenaTest, ResetTrimsToSingleChunk) {
  Arena arena;
  for (int i = 0; i < 32; ++i) (void)arena.alloc_array<std::int64_t>(8192);
  const std::size_t peak = arena.bytes_reserved();
  arena.reset();
  EXPECT_LT(arena.bytes_reserved(), peak);
  EXPECT_GT(arena.bytes_reserved(), 0u);  // high-water chunk retained
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, MarkRewindRecyclesWithoutFreeing) {
  Arena arena;
  (void)arena.alloc_array<std::int64_t>(100);
  const Arena::Mark m = arena.mark();
  const std::size_t used_at_mark = arena.bytes_used();
  for (int i = 0; i < 16; ++i) (void)arena.alloc_array<std::int64_t>(8192);
  const std::int64_t chunks_at_peak = arena.chunk_allocations();
  arena.rewind(m);
  EXPECT_EQ(arena.bytes_used(), used_at_mark);
  // Re-running the same allocation pattern reuses the rewound chunks.
  for (int i = 0; i < 16; ++i) (void)arena.alloc_array<std::int64_t>(8192);
  EXPECT_EQ(arena.chunk_allocations(), chunks_at_peak);
}

TEST(ArenaTest, ArenaScopeRewindsOnExit) {
  Arena arena;
  (void)arena.alloc_array<std::int64_t>(10);
  const std::size_t before = arena.bytes_used();
  {
    ArenaScope scope(arena);
    (void)arena.alloc_array<std::int64_t>(5000);
    EXPECT_GT(arena.bytes_used(), before);
  }
  EXPECT_EQ(arena.bytes_used(), before);
}

TEST(ArenaTest, HugeArrayRequestThrowsInsteadOfOverflowing) {
  Arena arena;
  EXPECT_THROW((void)arena.alloc_array<std::int64_t>(std::size_t{1} << 61),
               std::bad_alloc);
}

TEST(ArenaTest, ChunkAcquisitionIsCounted) {
  TelemetryReport report;
  {
    TelemetrySession session(&report);
    Arena arena;
    (void)arena.alloc_array<std::int64_t>(100);
  }
  EXPECT_GE(report.count("alloc.arena.chunks"), 1);
  EXPECT_GE(report.count("alloc.arena.chunk_bytes"),
            static_cast<std::int64_t>(100 * sizeof(std::int64_t)));
}

// TSan lane: one arena per thread (the thread_arena() model) must be
// race-free by construction — distinct threads bump distinct arenas.
TEST(ArenaConcurrencyTest, ThreadArenasAreIndependent) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> sums(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &sums] {
      Arena& arena = thread_arena();
      for (int round = 0; round < 50; ++round) {
        ArenaScope scope(arena);
        auto* p = arena.alloc_array<std::int64_t>(1000);
        for (int i = 0; i < 1000; ++i) p[i] = t + i;
        std::int64_t sum = 0;
        for (int i = 0; i < 1000; ++i) sum += p[i];
        sums[static_cast<std::size_t>(t)] = sum;
      }
      thread_arena().reset();
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], 1000 * t + 999 * 1000 / 2);
  }
}

}  // namespace
}  // namespace sap
