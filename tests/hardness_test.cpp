// Tests for the PARTITION -> SAP hardness gadget: full schedulability of
// the gadget must coincide exactly with two-bin packability of the items.
#include <gtest/gtest.h>

#include "src/exact/profile_dp.hpp"
#include "src/gen/hardness.hpp"
#include "src/util/rng.hpp"

namespace sap {
namespace {

bool gadget_fully_schedulable(const TwoBinGadget& gadget) {
  const SapExactResult opt = sap_exact_profile_dp(gadget.instance);
  EXPECT_TRUE(opt.proven_optimal);
  return opt.weight ==
         static_cast<Weight>(gadget.instance.num_tasks());
}

TEST(HardnessGadgetTest, YesInstance) {
  // {3, 3, 2, 2} into two bins of 5: {3,2} + {3,2}.
  const std::vector<Value> sizes{3, 3, 2, 2};
  EXPECT_TRUE(two_bin_packable(sizes, 5));
  EXPECT_TRUE(gadget_fully_schedulable(two_bin_packing_gadget(sizes, 5)));
}

TEST(HardnessGadgetTest, NoInstance) {
  // {4, 4, 3} into two bins of 5: impossible (4+4 > 5, 4+3 > 5).
  const std::vector<Value> sizes{4, 4, 3};
  EXPECT_FALSE(two_bin_packable(sizes, 5));
  EXPECT_FALSE(gadget_fully_schedulable(two_bin_packing_gadget(sizes, 5)));
}

TEST(HardnessGadgetTest, SeparatorForcedEvenWhenBinsAreLoose) {
  // Single item of size 1, bins of 3: trivially packable.
  const std::vector<Value> sizes{1};
  EXPECT_TRUE(gadget_fully_schedulable(two_bin_packing_gadget(sizes, 3)));
}

TEST(HardnessGadgetTest, AgreesWithReferenceOnRandomItems) {
  Rng rng(283);
  for (int trial = 0; trial < 25; ++trial) {
    const Value c = rng.uniform_int(3, 7);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 5));
    std::vector<Value> sizes(n);
    for (auto& s : sizes) s = rng.uniform_int(1, c);
    const bool packable = two_bin_packable(sizes, c);
    const bool schedulable =
        gadget_fully_schedulable(two_bin_packing_gadget(sizes, c));
    EXPECT_EQ(packable, schedulable)
        << "trial " << trial << " C=" << c << " n=" << n;
  }
}

TEST(HardnessGadgetTest, RejectsInvalidItems) {
  const std::vector<Value> oversized{7};
  EXPECT_THROW(two_bin_packing_gadget(oversized, 5), std::invalid_argument);
  const std::vector<Value> zero{0};
  EXPECT_THROW(two_bin_packing_gadget(zero, 5), std::invalid_argument);
  EXPECT_THROW(two_bin_packing_gadget({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sap
