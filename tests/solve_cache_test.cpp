// Unit tests for the scale-out serving substrate: canonical instance
// hashing (cache key + shard route), the coalescing LRU solve cache, the
// striped latency reservoir, and shard routing. The concurrency tests
// (hammering acquire/publish/abandon and record/snapshot from many threads)
// carry the `concurrency` ctest label so the TSan lane runs them.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/io/canonical.hpp"
#include "src/service/shard.hpp"
#include "src/service/solve_cache.hpp"
#include "src/util/latency_reservoir.hpp"

namespace sap {
namespace {

using service::ShardPool;
using service::SolveCache;

TEST(CanonicalTextTest, StripsCommentsBlankLinesAndWhitespaceRuns) {
  const std::string noisy =
      "# header comment\n"
      "sap-path v1\n"
      "\n"
      "edges   3\t \n"
      "capacities 4 4 4   # trailing comment\n"
      "\r\n"
      "tasks 1\n"
      "0  0\t2   5\n";
  const std::string clean =
      "sap-path v1\n"
      "edges 3\n"
      "capacities 4 4 4\n"
      "tasks 1\n"
      "0 0 2 5\n";
  EXPECT_EQ(canonical_instance_text(noisy), clean);
  // Canonical form is a fixed point.
  EXPECT_EQ(canonical_instance_text(clean), clean);
  EXPECT_EQ(canonical_digest(noisy), canonical_digest(clean));
}

TEST(CanonicalTextTest, NeverMergesDistinctTokenStreams) {
  // A separator survives wherever one existed: "4 4" must not collide with
  // "44", and a newline boundary must not collide with a space.
  EXPECT_NE(canonical_digest("4 4\n"), canonical_digest("44\n"));
  EXPECT_NE(canonical_digest("a b\n"), canonical_digest("a\nb\n"));
  EXPECT_NE(canonical_digest("edges 3\n"), canonical_digest("edges 30\n"));
}

TEST(CanonicalTextTest, DigestIsOrderSensitiveAndFieldFramed) {
  InstanceHasher h1;
  h1.update("abc");
  h1.update_u64(7);
  InstanceHasher h2;
  h2.update_u64(7);
  h2.update("abc");
  EXPECT_NE(h1.digest(), h2.digest());  // order matters

  // Each update() call is a framed field: ("ab","c") must not collide with
  // ("abc") — otherwise adjacent request fields could concatenate-collide
  // (algo "ful" + instance "lx" vs algo "full" + instance "x").
  InstanceHasher h3;
  h3.update("ab");
  h3.update("c");
  InstanceHasher h4;
  h4.update("abc");
  EXPECT_NE(h3.digest(), h4.digest());

  // Identical field sequences collide, of course.
  InstanceHasher h5;
  h5.update("ab");
  h5.update("c");
  EXPECT_EQ(h3.digest(), h5.digest());
}

InstanceDigest key_of(std::uint64_t n) {
  InstanceHasher h;
  h.update_u64(n);
  return h.digest();
}

TEST(SolveCacheTest, DisabledCacheAlwaysReturnsDisabledAndCountsNothing) {
  SolveCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const auto acquired = cache.acquire(key_of(1), 1);
  EXPECT_EQ(acquired.role, SolveCache::Role::kDisabled);
  EXPECT_TRUE(cache.publish(key_of(1), "x").empty());
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(SolveCacheTest, OwnerPublishesThenHitsServeTheStoredBytes) {
  SolveCache cache(4);
  const auto first = cache.acquire(key_of(1), 10);
  ASSERT_EQ(first.role, SolveCache::Role::kOwner);
  EXPECT_TRUE(cache.publish(key_of(1), "payload-1").empty());

  const auto second = cache.acquire(key_of(1), 11);
  ASSERT_EQ(second.role, SolveCache::Role::kHit);
  EXPECT_EQ(second.payload, "payload-1");

  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SolveCacheTest, LruEvictionBoundsEntriesAndEvictsOldestFirst) {
  SolveCache cache(3);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    ASSERT_EQ(cache.acquire(key_of(k), k).role, SolveCache::Role::kOwner);
    (void)cache.publish(key_of(k), "v" + std::to_string(k));
  }
  // Touch key 1 so key 2 becomes the least recently used.
  ASSERT_EQ(cache.acquire(key_of(1), 100).role, SolveCache::Role::kHit);

  // Inserting key 4 must evict exactly one entry — key 2.
  ASSERT_EQ(cache.acquire(key_of(4), 101).role, SolveCache::Role::kOwner);
  (void)cache.publish(key_of(4), "v4");

  SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.acquire(key_of(1), 102).role, SolveCache::Role::kHit);
  EXPECT_EQ(cache.acquire(key_of(3), 103).role, SolveCache::Role::kHit);
  EXPECT_EQ(cache.acquire(key_of(4), 104).role, SolveCache::Role::kHit);
  // Key 2 is gone; asking for it makes the caller the new owner.
  EXPECT_EQ(cache.acquire(key_of(2), 105).role, SolveCache::Role::kOwner);

  // Capacity stays bounded under sustained inserts.
  (void)cache.publish(key_of(2), "v2");
  for (std::uint64_t k = 10; k < 30; ++k) {
    ASSERT_EQ(cache.acquire(key_of(k), k).role, SolveCache::Role::kOwner);
    (void)cache.publish(key_of(k), "x");
    EXPECT_LE(cache.stats().entries, 3u);
  }
}

TEST(SolveCacheTest, WaitersParkBehindOwnerAndPublishReturnsThemInOrder) {
  SolveCache cache(4);
  ASSERT_EQ(cache.acquire(key_of(7), 1).role, SolveCache::Role::kOwner);
  EXPECT_EQ(cache.acquire(key_of(7), 2).role, SolveCache::Role::kWaiter);
  EXPECT_EQ(cache.acquire(key_of(7), 3).role, SolveCache::Role::kWaiter);

  const std::vector<std::uint64_t> waiters =
      cache.publish(key_of(7), "shared");
  EXPECT_EQ(waiters, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(cache.stats().coalesced, 2u);
  EXPECT_EQ(cache.acquire(key_of(7), 4).payload, "shared");
}

TEST(SolveCacheTest, AbandonReturnsWaitersAndStoresNothing) {
  SolveCache cache(4);
  ASSERT_EQ(cache.acquire(key_of(9), 1).role, SolveCache::Role::kOwner);
  EXPECT_EQ(cache.acquire(key_of(9), 2).role, SolveCache::Role::kWaiter);

  const std::vector<std::uint64_t> waiters = cache.abandon(key_of(9));
  EXPECT_EQ(waiters, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is free again: the next caller owns a fresh computation. This
  // is the mechanism behind "degraded responses are never cached".
  EXPECT_EQ(cache.acquire(key_of(9), 3).role, SolveCache::Role::kOwner);
}

TEST(SolveCacheTest, ConcurrentAcquirersSettleEveryWaiterExactlyOnce) {
  // Many threads race acquire() on a small key space; owners always
  // publish. Invariants: every parked waiter id is returned by exactly one
  // publish, every hit sees the owner's bytes, entries stay bounded.
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  constexpr std::uint64_t kKeys = 4;
  SolveCache cache(2);  // smaller than the key space: evictions happen too

  std::mutex settled_mutex;
  std::set<std::uint64_t> settled;      // waiter ids returned by publishes
  std::set<std::uint64_t> parked;       // waiter ids that got kWaiter
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<int> hits{0}, owners{0}, waiters{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::uint64_t k =
            (static_cast<std::uint64_t>(t) + static_cast<std::uint64_t>(i)) %
            kKeys;
        const std::uint64_t id = next_id.fetch_add(1);
        const auto acquired = cache.acquire(key_of(k), id);
        switch (acquired.role) {
          case SolveCache::Role::kHit:
            hits.fetch_add(1);
            EXPECT_EQ(acquired.payload, "value-" + std::to_string(k));
            break;
          case SolveCache::Role::kOwner: {
            owners.fetch_add(1);
            const auto ids =
                cache.publish(key_of(k), "value-" + std::to_string(k));
            std::lock_guard lock(settled_mutex);
            for (const std::uint64_t settled_id : ids) {
              EXPECT_TRUE(settled.insert(settled_id).second)
                  << "waiter settled twice";
            }
            break;
          }
          case SolveCache::Role::kWaiter: {
            waiters.fetch_add(1);
            std::lock_guard lock(settled_mutex);
            parked.insert(id);
            break;
          }
          case SolveCache::Role::kDisabled:
            ADD_FAILURE() << "cache reported disabled";
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every parked waiter was settled by exactly one publish (the insert
  // uniqueness above), and nobody else was.
  EXPECT_EQ(settled, parked);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(hits.load()));
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(waiters.load()));
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(owners.load()));
}

TEST(LatencyReservoirTest, SnapshotReportsPercentilesAndTotalCount) {
  LatencyReservoir reservoir(/*capacity=*/100, /*stripes=*/1);
  for (int i = 1; i <= 100; ++i) reservoir.record(static_cast<double>(i));
  const LatencyReservoir::Snapshot snap = reservoir.snapshot();
  EXPECT_EQ(snap.samples, 100u);
  EXPECT_NEAR(snap.p50_ms, 50.0, 2.0);
  EXPECT_NEAR(snap.p95_ms, 95.0, 2.0);
  EXPECT_EQ(snap.max_ms, 100.0);
}

TEST(LatencyReservoirTest, RingRetainsRecentSamplesBeyondCapacity) {
  LatencyReservoir reservoir(/*capacity=*/8, /*stripes=*/1);
  for (int i = 0; i < 1000; ++i) reservoir.record(1.0);
  const LatencyReservoir::Snapshot snap = reservoir.snapshot();
  EXPECT_EQ(snap.samples, 1000u);  // total ever recorded
  EXPECT_EQ(snap.p50_ms, 1.0);     // retained window stays bounded
}

TEST(LatencyReservoirTest, ConcurrentRecordersAndSnapshottersAreRaceFree) {
  // Exercised under TSan via the `concurrency` label: stripes must make
  // record/record and record/snapshot safe with no global lock.
  constexpr int kThreads = 8;
  constexpr int kRecords = 2'000;
  LatencyReservoir reservoir(/*capacity=*/256, /*stripes=*/4);
  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&] {
    while (!stop_snapshots.load()) {
      const LatencyReservoir::Snapshot snap = reservoir.snapshot();
      EXPECT_GE(snap.max_ms, 0.0);
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < kRecords; ++i) {
        reservoir.record(static_cast<double>(i % 17) + 0.5,
                         static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& thread : recorders) thread.join();
  stop_snapshots = true;
  snapshotter.join();
  EXPECT_EQ(reservoir.snapshot().samples,
            static_cast<std::size_t>(kThreads) * kRecords);
}

TEST(ShardPoolTest, RoutesDeterministicallyAndRunsEveryJob) {
  ShardPool::Options options;
  options.shards = 4;
  options.threads = 4;
  options.pin_cpus = false;
  ShardPool pool(options);
  ASSERT_EQ(pool.shard_count(), 4u);
  // Same route hash, same shard, every time.
  for (std::uint64_t h : {0ull, 1ull, 7ull, 1'000'003ull}) {
    EXPECT_EQ(pool.shard_of(h), pool.shard_of(h));
    EXPECT_LT(pool.shard_of(h), 4u);
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(pool.submit(static_cast<std::uint64_t>(i),
                          [&ran] { ran.fetch_add(1); }),
              ShardPool::Submit::kOk);
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
  pool.stop();
  EXPECT_EQ(pool.submit(0, [] {}), ShardPool::Submit::kStopped);
}

TEST(ShardPoolTest, PerShardCapacityRejectsWithFullNotBlocking) {
  ShardPool::Options options;
  options.shards = 1;
  options.threads = 1;
  options.queue_capacity = 1;
  options.pin_cpus = false;
  ShardPool pool(options);

  std::mutex gate;
  gate.lock();  // the single worker blocks on its first job
  ASSERT_EQ(pool.submit(0,
                        [&gate] {
                          gate.lock();
                          gate.unlock();
                        }),
            ShardPool::Submit::kOk);
  // Wait for the worker to pick the blocker up, then fill the queue.
  while (pool.totals().active == 0) std::this_thread::yield();
  ASSERT_EQ(pool.submit(0, [] {}), ShardPool::Submit::kOk);
  // Queue full: immediate kFull, no blocking. submit_admitted bypasses it.
  EXPECT_EQ(pool.submit(0, [] {}), ShardPool::Submit::kFull);
  std::atomic<bool> admitted_ran{false};
  EXPECT_EQ(pool.submit_admitted(0, [&] { admitted_ran = true; }),
            ShardPool::Submit::kOk);

  gate.unlock();
  pool.drain();
  EXPECT_TRUE(admitted_ran.load());
  pool.stop();
}

}  // namespace
}  // namespace sap
